package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// PoolDiscipline enforces the sync.Pool hygiene the engine's hot paths
// depend on (batchPool, valuesPool, encBuf, the enumerator's preparedJoin
// pool):
//
//  1. a function that Gets from a pool must either Put back to the same
//     pool or visibly hand the value off (pass it to a call, send it on a
//     channel, or return it) — otherwise the value leaks and the pool
//     degrades to plain allocation;
//  2. a value must not be used after it was Put (the pool may have handed
//     it to another goroutine already);
//  3. a slice handed directly to Put must be length-reset (Put(x[:0])), so
//     the next Get never observes stale elements.
//
// The checks are flow-insensitive per function: hand-offs across
// goroutines (the engine's batch recycling) are treated as transfers of
// ownership at the call/send site.
var PoolDiscipline = &Analyzer{
	Name: "pooldiscipline",
	Doc: "sync.Pool Gets need a matching Put or hand-off, no use-after-Put, " +
		"and pooled slices must be length-reset at Put",
	Run: runPoolDiscipline,
}

func runPoolDiscipline(pass *Pass) {
	for _, file := range pass.Files {
		enclosingFuncs(file, func(body *ast.BlockStmt) {
			checkPoolFunc(pass, body)
		})
	}
}

// isSyncPool reports whether t is sync.Pool or *sync.Pool.
func isSyncPool(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Pool"
}

// poolCall classifies call as pool.Get / pool.Put, returning the receiver
// expression's printed form as the pool's identity.
func poolCall(pass *Pass, call *ast.CallExpr) (recv string, method string, ok bool) {
	sel, selOk := call.Fun.(*ast.SelectorExpr)
	if !selOk || (sel.Sel.Name != "Get" && sel.Sel.Name != "Put") {
		return "", "", false
	}
	t := pass.Info.TypeOf(sel.X)
	if t == nil || !isSyncPool(t) {
		return "", "", false
	}
	return types.ExprString(sel.X), sel.Sel.Name, true
}

// checkPoolFunc runs all three checks over one function body. Nested
// function literals are analyzed separately by the caller, so the walk
// stops at them: a Get whose Put lives in a nested literal counts as a
// hand-off only if the value is captured there (which the escape scan
// below observes as a use inside a CallExpr or the literal itself).
func checkPoolFunc(pass *Pass, body *ast.BlockStmt) {
	type getSite struct {
		call *ast.CallExpr
		pool string
		obj  types.Object // variable the result was assigned to, if any
	}
	var gets []getSite
	puts := make(map[string]bool) // pool identity -> has a Put in this function

	walkShallow(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		pool, method, ok := poolCall(pass, call)
		if !ok {
			return
		}
		if method == "Put" {
			puts[pool] = true
			checkPutArg(pass, call)
			return
		}
		gets = append(gets, getSite{call: call, pool: pool})
	})

	// Resolve which variable each Get was assigned to: x := pool.Get(),
	// possibly through a type assertion.
	walkShallow(body, func(n ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return
		}
		rhs := as.Rhs[0]
		if ta, ok := rhs.(*ast.TypeAssertExpr); ok {
			rhs = ta.X
		}
		call, ok := rhs.(*ast.CallExpr)
		if !ok {
			return
		}
		for i := range gets {
			if gets[i].call != call {
				continue
			}
			if id, ok := as.Lhs[0].(*ast.Ident); ok {
				if obj := pass.Info.Defs[id]; obj != nil {
					gets[i].obj = obj
				} else if obj := pass.Info.Uses[id]; obj != nil {
					gets[i].obj = obj
				}
			}
		}
	})

	for _, g := range gets {
		if puts[g.pool] {
			continue
		}
		if g.obj != nil && escapesFunc(pass, body, g.obj) {
			continue
		}
		if g.obj == nil && handsOffDirectly(pass, body, g.call) {
			continue
		}
		pass.Reportf(g.call.Pos(),
			"%s.Get without a matching Put or hand-off in this function: the pooled value leaks", g.pool)
	}

	checkUseAfterPut(pass, body)
}

// walkShallow visits the nodes of body without descending into nested
// function literals (each literal is checked as its own function).
func walkShallow(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

// escapesFunc reports whether obj is handed off: used as a call argument,
// sent on a channel, returned, or captured by a function literal.
func escapesFunc(pass *Pass, body *ast.BlockStmt, obj types.Object) bool {
	escapes := false
	ast.Inspect(body, func(n ast.Node) bool {
		if escapes {
			return false
		}
		switch s := n.(type) {
		case *ast.CallExpr:
			if _, _, isPool := poolCall(pass, s); isPool {
				return true // the Get itself is not a hand-off
			}
			for _, arg := range s.Args {
				if usesObject(pass.Info, arg, obj) {
					escapes = true
				}
			}
		case *ast.SendStmt:
			if usesObject(pass.Info, s.Value, obj) {
				escapes = true
			}
		case *ast.ReturnStmt:
			for _, res := range s.Results {
				if usesObject(pass.Info, res, obj) {
					escapes = true
				}
			}
		case *ast.FuncLit:
			if usesObject(pass.Info, s.Body, obj) {
				escapes = true
			}
			return false
		}
		return !escapes
	})
	return escapes
}

// handsOffDirectly covers Gets that are never bound to a variable: the
// call's result is a hand-off when it sits inside a return value, an
// argument to another (non-pool) call, or a channel send.
func handsOffDirectly(pass *Pass, body *ast.BlockStmt, get *ast.CallExpr) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch s := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range s.Results {
				if nodeContains(res, get) {
					found = true
				}
			}
		case *ast.SendStmt:
			if nodeContains(s.Value, get) {
				found = true
			}
		case *ast.CallExpr:
			if s == get {
				return true
			}
			if _, _, isPool := poolCall(pass, s); isPool {
				return true
			}
			for _, arg := range s.Args {
				if nodeContains(arg, get) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// nodeContains reports whether target appears in outer's subtree.
func nodeContains(outer, target ast.Node) bool {
	found := false
	ast.Inspect(outer, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}

// checkPutArg enforces the slice length-reset rule on one Put call.
func checkPutArg(pass *Pass, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	arg := call.Args[0]
	t := pass.Info.TypeOf(arg)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Slice); !ok {
		return // pointer-to-slice pools reset the pointee; not checked here
	}
	if sl, ok := arg.(*ast.SliceExpr); ok {
		if sl.Low == nil && isConstZero(pass, sl.High) {
			return // x[:0] — compliant
		}
	}
	pass.Reportf(arg.Pos(),
		"slice handed to Put without a length reset; use Put(%s[:0]) so the next Get cannot observe stale elements",
		types.ExprString(baseOf(arg)))
}

// baseOf strips slice expressions to the underlying operand for the
// suggestion text.
func baseOf(e ast.Expr) ast.Expr {
	if sl, ok := e.(*ast.SliceExpr); ok {
		return baseOf(sl.X)
	}
	return e
}

// isConstZero reports whether e is the integer constant 0.
func isConstZero(pass *Pass, e ast.Expr) bool {
	if e == nil {
		return false
	}
	tv := pass.Info.Types[e]
	if tv.Value == nil || tv.Value.Kind() != constant.Int {
		return false
	}
	v, ok := constant.Int64Val(tv.Value)
	return ok && v == 0
}

// checkUseAfterPut flags statements that read a variable after the same
// block already Put it back, unless the variable was reassigned in
// between.
func checkUseAfterPut(pass *Pass, body *ast.BlockStmt) {
	walkShallow(body, func(n ast.Node) {
		switch block := n.(type) {
		case *ast.BlockStmt:
			checkBlockUseAfterPut(pass, block.List)
		case *ast.CaseClause:
			checkBlockUseAfterPut(pass, block.Body)
		}
	})
}

// putTarget extracts the variable a Put statement recycles, or nil.
func putTarget(pass *Pass, stmt ast.Stmt) (types.Object, *ast.CallExpr) {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return nil, nil
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return nil, nil
	}
	if _, method, isPool := poolCall(pass, call); !isPool || method != "Put" || len(call.Args) != 1 {
		return nil, nil
	}
	arg := baseOf(call.Args[0])
	id, ok := arg.(*ast.Ident)
	if !ok {
		return nil, nil
	}
	return pass.Info.Uses[id], call
}

func checkBlockUseAfterPut(pass *Pass, stmts []ast.Stmt) {
	for i, stmt := range stmts {
		obj, call := putTarget(pass, stmt)
		if obj == nil {
			continue
		}
		for _, later := range stmts[i+1:] {
			if assignsObject(pass, later, obj) {
				break
			}
			if usesObject(pass.Info, later, obj) {
				pass.Reportf(later.Pos(),
					"%s is used after it was handed to Put at line %d; the pool may already have given it to another goroutine",
					obj.Name(), pass.Fset.Position(call.Pos()).Line)
				break
			}
		}
	}
}

// assignsObject reports whether stmt (at its top level) reassigns obj,
// which ends the use-after-Put window.
func assignsObject(pass *Pass, stmt ast.Stmt, obj types.Object) bool {
	as, ok := stmt.(*ast.AssignStmt)
	if !ok {
		return false
	}
	for _, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); ok {
			if pass.Info.Uses[id] == obj || pass.Info.Defs[id] == obj {
				return true
			}
		}
	}
	return false
}
