package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Package is one loaded, type-checked module package.
type Package struct {
	// Path is the package's import path ("intervaljoin/internal/mr").
	Path string
	// Dir is the directory the files were read from.
	Dir string
	// Fset maps positions; shared by every package of one Loader.
	Fset *token.FileSet
	// Files are the parsed non-test files, in file-name order.
	Files []*ast.File
	// Types and Info are the type-checker's outputs.
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of the enclosing module. It
// resolves module-internal imports from the module tree and everything else
// from the standard library via the source importer, so it needs neither
// network access nor third-party dependencies. A Loader is not safe for
// concurrent use.
type Loader struct {
	fset    *token.FileSet
	root    string // module root directory
	module  string // module path from go.mod
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader returns a loader for the module rooted at or above dir.
func NewLoader(dir string) (*Loader, error) {
	root, module, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		fset:    fset,
		root:    root,
		module:  module,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// Root returns the module root directory.
func (l *Loader) Root() string { return l.root }

// Module returns the module path.
func (l *Loader) Module() string { return l.module }

// findModule walks upward from dir to the enclosing go.mod.
func findModule(dir string) (root, module string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, rerr := os.ReadFile(filepath.Join(dir, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: no module directive in %s/go.mod", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// Import implements types.Importer: module-internal paths load from the
// module tree, everything else from the standard library.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// Load type-checks the module package with the given import path.
func (l *Loader) Load(path string) (*Package, error) {
	dir := l.root
	if path != l.module {
		rel, ok := strings.CutPrefix(path, l.module+"/")
		if !ok {
			return nil, fmt.Errorf("lint: %s is not a package of module %s", path, l.module)
		}
		dir = filepath.Join(l.root, filepath.FromSlash(rel))
	}
	return l.LoadDir(dir, path)
}

// LoadDir type-checks the single package in dir under the given import
// path. Test files (_test.go) are excluded: ijlint checks the shipped
// code, and the hot-path rules explicitly exempt tests. Files whose
// //go:build (or legacy // +build) constraint evaluates false for the
// current GOOS/GOARCH are excluded the same way the go tool excludes
// them; file-name suffix conventions (_linux.go) are not interpreted —
// this module does not use them.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		if buildConstraintExcludes(f) {
			continue
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: all Go files in %s are excluded by build constraints", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %v", path, typeErrs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg := &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// buildConstraintExcludes reports whether the file carries a build
// constraint, in a comment preceding the package clause, that evaluates
// false for the current environment.
func buildConstraintExcludes(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				continue // not a constraint comment
			}
			if !expr.Eval(buildTagSatisfied) {
				return true
			}
		}
	}
	return false
}

// buildTagSatisfied is the constraint evaluator: the running GOOS, GOARCH,
// the gc toolchain, the unix umbrella, and released go1.N versions are
// true; everything else (custom tags like "never" or "integration") is
// false, matching an ijlint run with no -tags flag.
func buildTagSatisfied(tag string) bool {
	switch tag {
	case runtime.GOOS, runtime.GOARCH, "gc":
		return true
	case "unix":
		switch runtime.GOOS {
		case "aix", "android", "darwin", "dragonfly", "freebsd", "hurd",
			"illumos", "ios", "linux", "netbsd", "openbsd", "solaris":
			return true
		}
		return false
	}
	if v, ok := strings.CutPrefix(tag, "go1."); ok {
		n, err := strconv.Atoi(v)
		if err != nil {
			return false
		}
		cur, ok := strings.CutPrefix(runtime.Version(), "go1.")
		if !ok {
			return true // devel toolchain: assume every release tag holds
		}
		if dot := strings.IndexByte(cur, '.'); dot >= 0 {
			cur = cur[:dot]
		}
		minor, err := strconv.Atoi(cur)
		if err != nil {
			return true
		}
		return n <= minor
	}
	return false
}

// Expand resolves package patterns relative to the module root into import
// paths: "./..." walks the whole module, "./dir/..." a subtree, "./dir" a
// single package, and a plain import path is used as-is. testdata trees and
// hidden directories are always skipped, exactly as the go tool does.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var out []string
	seen := make(map[string]bool)
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			paths, err := l.walk(l.root)
			if err != nil {
				return nil, err
			}
			for _, p := range paths {
				add(p)
			}
		case strings.HasSuffix(pat, "/..."):
			dir := filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(strings.TrimSuffix(pat, "/..."), "./")))
			paths, err := l.walk(dir)
			if err != nil {
				return nil, err
			}
			for _, p := range paths {
				add(p)
			}
		case strings.HasPrefix(pat, "./"):
			rel := strings.TrimPrefix(pat, "./")
			if rel == "" || rel == "." {
				add(l.module)
			} else {
				add(l.module + "/" + filepath.ToSlash(rel))
			}
		default:
			add(pat)
		}
	}
	return out, nil
}

// walk collects the import paths of every package directory under dir.
func (l *Loader) walk(dir string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != dir && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		pdir := filepath.Dir(path)
		rel, err := filepath.Rel(l.root, pdir)
		if err != nil {
			return err
		}
		ip := l.module
		if rel != "." {
			ip = l.module + "/" + filepath.ToSlash(rel)
		}
		if len(out) == 0 || out[len(out)-1] != ip {
			out = append(out, ip)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}
