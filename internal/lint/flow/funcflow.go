package flow

import (
	"go/ast"
	"go/types"
)

// flowBuilder computes Graph.flows: for every variable, field, and
// parameter, the set of module function nodes whose values may be stored
// in it. The analysis is flow-insensitive and runs to a fixed point over
// four kinds of facts:
//
//	objVals[o]  function values known to flow into object o
//	objObj[o]   objects whose values flow into o (o = src)
//	objRet[o]   nodes whose return values flow into o (o = f())
//	retVals[n]  function values node n may return
//	retObj[n]   objects whose values n may return
//	retRet[n]   nodes whose return values n may return
type flowBuilder struct {
	g       *Graph
	objVals map[types.Object]map[*Node]bool
	objObj  map[types.Object]map[types.Object]bool
	objRet  map[types.Object]map[*Node]bool
	retVals map[*Node]map[*Node]bool
	retObj  map[*Node]map[types.Object]bool
	retRet  map[*Node]map[*Node]bool
}

func newFlowBuilder(g *Graph) *flowBuilder {
	return &flowBuilder{
		g:       g,
		objVals: make(map[types.Object]map[*Node]bool),
		objObj:  make(map[types.Object]map[types.Object]bool),
		objRet:  make(map[types.Object]map[*Node]bool),
		retVals: make(map[*Node]map[*Node]bool),
		retObj:  make(map[*Node]map[types.Object]bool),
		retRet:  make(map[*Node]map[*Node]bool),
	}
}

func (b *flowBuilder) build() {
	for _, u := range b.g.Units {
		for _, f := range u.Files {
			b.collectFile(u, f)
		}
	}
	// Return statements attribute to their enclosing node, so they are
	// collected per node body (shallow: a literal's returns are its own).
	for _, n := range b.g.nodes {
		b.collectReturns(n)
	}
	b.propagate()
	for obj, vals := range b.objVals {
		for n := range vals {
			b.g.flows[obj] = append(b.g.flows[obj], n)
		}
	}
}

// collectFile records every site where a function value flows into an
// object: assignments, var specs, composite literal fields, and call
// arguments binding to parameters.
func (b *flowBuilder) collectFile(u *Unit, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) != len(s.Rhs) {
				return true
			}
			for i := range s.Lhs {
				if dst := lhsObj(u, s.Lhs[i]); dst != nil {
					b.flowInto(u, dst, s.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(s.Names) != len(s.Values) {
				return true
			}
			for i, name := range s.Names {
				if dst := u.Info.Defs[name]; dst != nil {
					b.flowInto(u, dst, s.Values[i])
				}
			}
		case *ast.CompositeLit:
			b.collectComposite(u, s)
		case *ast.CallExpr:
			b.collectCallArgs(u, s)
		}
		return true
	})
}

// collectComposite maps struct literal elements onto their field objects.
func (b *flowBuilder) collectComposite(u *Unit, cl *ast.CompositeLit) {
	typ := u.Info.TypeOf(cl)
	if typ == nil {
		return
	}
	if ptr, ok := typ.(*types.Pointer); ok {
		typ = ptr.Elem()
	}
	st, ok := typ.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i, elt := range cl.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if key, ok := kv.Key.(*ast.Ident); ok {
				if field := u.Info.Uses[key]; field != nil {
					b.flowInto(u, field, kv.Value)
				}
			}
			continue
		}
		if i < st.NumFields() {
			b.flowInto(u, st.Field(i), elt)
		}
	}
}

// collectCallArgs binds call arguments to the parameters of directly
// resolvable callees. Arguments to indirect or interface calls are not
// tracked (the engine's callbacks bind through fields and assignments).
func (b *flowBuilder) collectCallArgs(u *Unit, call *ast.CallExpr) {
	for _, callee := range b.directCallees(u, call) {
		sig := callee.Signature()
		params := sig.Params()
		for i, arg := range call.Args {
			if i >= params.Len() || (sig.Variadic() && i >= params.Len()-1) {
				break
			}
			b.flowInto(u, params.At(i), arg)
		}
	}
}

// collectReturns records which function values node n may return.
func (b *flowBuilder) collectReturns(n *Node) {
	var walk func(s ast.Stmt)
	visit := func(node ast.Node) bool {
		if _, ok := node.(*ast.FuncLit); ok {
			return false // a literal's returns belong to its own node
		}
		if ret, ok := node.(*ast.ReturnStmt); ok {
			for _, res := range ret.Results {
				nodes, objs, rets := b.sources(n.Unit, res)
				for _, v := range nodes {
					addSet(b.retVals, n, v)
				}
				for _, o := range objs {
					addSet(b.retObj, n, o)
				}
				for _, r := range rets {
					addSet(b.retRet, n, r)
				}
			}
		}
		return true
	}
	walk = func(s ast.Stmt) { ast.Inspect(s, visit) }
	walk(n.Body)
}

// flowInto records that the function values of expr may be stored in dst.
func (b *flowBuilder) flowInto(u *Unit, dst types.Object, expr ast.Expr) {
	if dst == nil {
		return
	}
	nodes, objs, rets := b.sources(u, expr)
	for _, n := range nodes {
		addSet(b.objVals, dst, n)
	}
	for _, o := range objs {
		if o != dst {
			addSet(b.objObj, dst, o)
		}
	}
	for _, n := range rets {
		addSet(b.objRet, dst, n)
	}
}

// sources decomposes an expression into the function values it may
// evaluate to: concrete nodes, objects whose stored values it reads, and
// nodes whose return values it is.
func (b *flowBuilder) sources(u *Unit, e ast.Expr) (nodes []*Node, objs []types.Object, rets []*Node) {
	switch x := unwrap(e).(type) {
	case *ast.FuncLit:
		if n := b.g.byLit[x]; n != nil {
			nodes = append(nodes, n)
		}
	case *ast.Ident:
		switch o := u.Info.Uses[x].(type) {
		case *types.Func:
			if n := b.g.NodeOf(o); n != nil {
				nodes = append(nodes, n)
			}
		case *types.Var:
			objs = append(objs, o)
		}
	case *ast.SelectorExpr:
		if sel, ok := u.Info.Selections[x]; ok {
			switch sel.Kind() {
			case types.MethodVal, types.MethodExpr:
				if fn, ok := sel.Obj().(*types.Func); ok {
					if n := b.g.NodeOf(fn); n != nil {
						nodes = append(nodes, n)
					}
				}
			case types.FieldVal:
				objs = append(objs, sel.Obj())
			}
			return nodes, objs, rets
		}
		switch o := u.Info.Uses[x.Sel].(type) {
		case *types.Func:
			if n := b.g.NodeOf(o); n != nil {
				nodes = append(nodes, n)
			}
		case *types.Var:
			objs = append(objs, o)
		}
	case *ast.CallExpr:
		if tv, ok := u.Info.Types[x.Fun]; ok && tv.IsType() {
			// Type conversion (mr.MapFunc(f)): pass the operand through.
			if len(x.Args) == 1 {
				return b.sources(u, x.Args[0])
			}
			return nodes, objs, rets
		}
		rets = append(rets, b.directCallees(u, x)...)
	case *ast.UnaryExpr:
		return b.sources(u, x.X)
	}
	return nodes, objs, rets
}

// directCallees resolves a call to its statically known module callees
// (named functions, methods on concrete types, immediately invoked
// literals) — the subset resolvable before the flow fixed point runs.
func (b *flowBuilder) directCallees(u *Unit, call *ast.CallExpr) []*Node {
	switch fun := unwrap(call.Fun).(type) {
	case *ast.FuncLit:
		if n := b.g.byLit[fun]; n != nil {
			return []*Node{n}
		}
	case *ast.Ident:
		if fn, ok := u.Info.Uses[fun].(*types.Func); ok {
			if n := b.g.NodeOf(fn); n != nil {
				return []*Node{n}
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := u.Info.Selections[fun]; ok {
			if sel.Kind() == types.MethodVal {
				if fn, ok := sel.Obj().(*types.Func); ok {
					if _, isIface := sel.Recv().Underlying().(*types.Interface); !isIface {
						if n := b.g.NodeOf(fn); n != nil {
							return []*Node{n}
						}
					}
				}
			}
			return nil
		}
		if fn, ok := u.Info.Uses[fun.Sel].(*types.Func); ok {
			if n := b.g.NodeOf(fn); n != nil {
				return []*Node{n}
			}
		}
	}
	return nil
}

// propagate runs the transfer rules to a fixed point.
func (b *flowBuilder) propagate() {
	for changed := true; changed; {
		changed = false
		for dst, srcs := range b.objObj {
			for src := range srcs {
				for v := range b.objVals[src] {
					if addSet(b.objVals, dst, v) {
						changed = true
					}
				}
			}
		}
		for dst, ns := range b.objRet {
			for n := range ns {
				for v := range b.retVals[n] {
					if addSet(b.objVals, dst, v) {
						changed = true
					}
				}
			}
		}
		for n, objs := range b.retObj {
			for o := range objs {
				for v := range b.objVals[o] {
					if addSet(b.retVals, n, v) {
						changed = true
					}
				}
			}
		}
		for n, ms := range b.retRet {
			for m := range ms {
				for v := range b.retVals[m] {
					if addSet(b.retVals, n, v) {
						changed = true
					}
				}
			}
		}
	}
}

// lhsObj resolves an assignment target to its object: a variable, a
// struct field (including through pointers), or a package variable.
func lhsObj(u *Unit, e ast.Expr) types.Object {
	switch l := unwrap(e).(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return nil
		}
		if o := u.Info.Defs[l]; o != nil {
			return o
		}
		return u.Info.Uses[l]
	case *ast.SelectorExpr:
		if sel, ok := u.Info.Selections[l]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
		return u.Info.Uses[l.Sel]
	case *ast.StarExpr:
		return lhsObj(u, l.X)
	}
	return nil
}

// addSet inserts v into m[k], allocating the inner set, and reports
// whether it was new.
func addSet[K comparable, V comparable](m map[K]map[V]bool, k K, v V) bool {
	s := m[k]
	if s == nil {
		s = make(map[V]bool)
		m[k] = s
	}
	if s[v] {
		return false
	}
	s[v] = true
	return true
}
