package flow

import (
	"go/ast"
	"go/token"
)

// CFG is the control-flow graph of one function body: basic blocks of
// simple statements and conditions connected by successor edges. Nested
// function literal bodies are excluded — each literal is its own call
// graph node with its own CFG. Goto edges are not modeled (the module has
// none); a goto ends its block like a return.
type CFG struct {
	Entry  *Block
	Blocks []*Block
	pos    map[ast.Node]nodePos
}

// Block is one basic block. Nodes holds simple statements and the
// expression operands of composite statements (an if condition, a switch
// tag, a range header) in execution order.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
}

type nodePos struct {
	block *Block
	index int
}

// Reaches reports whether execution can flow from just after node `from`
// to node `to`, following successor edges. Both must be CFG nodes of this
// graph.
func (c *CFG) Reaches(from, to ast.Node) bool {
	fp, ok := c.pos[from]
	tp, ok2 := c.pos[to]
	if !ok || !ok2 {
		return false
	}
	if fp.block == tp.block && tp.index > fp.index {
		return true
	}
	seen := make(map[*Block]bool)
	stack := append([]*Block(nil), fp.block.Succs...)
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[b] {
			continue
		}
		seen[b] = true
		if b == tp.block {
			return true
		}
		stack = append(stack, b.Succs...)
	}
	return false
}

// Contains reports whether n is a node of this CFG.
func (c *CFG) Contains(n ast.Node) bool {
	_, ok := c.pos[n]
	return ok
}

type cfgBuilder struct {
	cfg      *CFG
	cur      *Block
	frames   []frame
	label    string
	fallFrom *Block
}

// frame is one enclosing breakable construct. cont is nil for switches
// and selects.
type frame struct {
	label string
	brk   *Block
	cont  *Block
}

func buildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{cfg: &CFG{pos: make(map[ast.Node]nodePos)}}
	b.cfg.Entry = b.newBlock()
	b.cur = b.cfg.Entry
	b.stmt(body)
	return b.cfg
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) link(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

func (b *cfgBuilder) add(n ast.Node) {
	if n == nil {
		return
	}
	if _, dup := b.cfg.pos[n]; dup {
		return
	}
	b.cfg.pos[n] = nodePos{b.cur, len(b.cur.Nodes)}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// takeLabel consumes the pending label of a labeled statement.
func (b *cfgBuilder) takeLabel() string {
	l := b.label
	b.label = ""
	return l
}

func (b *cfgBuilder) findFrame(label *ast.Ident, needCont bool) *frame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := &b.frames[i]
		if needCont && f.cont == nil {
			continue
		}
		if label == nil || f.label == label.Name {
			return f
		}
	}
	return nil
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, t := range s.List {
			b.stmt(t)
		}
	case *ast.LabeledStmt:
		b.label = s.Label.Name
		b.stmt(s.Stmt)
		b.label = ""
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s)
	case *ast.RangeStmt:
		b.rangeStmt(s)
	case *ast.SwitchStmt:
		b.switchStmt(s.Init, s.Tag, nil, s.Body)
	case *ast.TypeSwitchStmt:
		b.switchStmt(s.Init, nil, s.Assign, s.Body)
	case *ast.SelectStmt:
		b.selectStmt(s)
	case *ast.ReturnStmt:
		b.add(s)
		b.cur = b.newBlock()
	case *ast.BranchStmt:
		b.branchStmt(s)
	default:
		// Simple statements: expr, assign, incdec, send, decl, defer, go,
		// empty.
		b.add(s)
	}
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	b.takeLabel()
	b.stmt(s.Init)
	b.add(s.Cond)
	cond := b.cur
	thenB := b.newBlock()
	b.link(cond, thenB)
	b.cur = thenB
	b.stmt(s.Body)
	thenEnd := b.cur
	join := b.newBlock()
	b.link(thenEnd, join)
	if s.Else != nil {
		elseB := b.newBlock()
		b.link(cond, elseB)
		b.cur = elseB
		b.stmt(s.Else)
		b.link(b.cur, join)
	} else {
		b.link(cond, join)
	}
	b.cur = join
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt) {
	label := b.takeLabel()
	b.stmt(s.Init)
	head := b.newBlock()
	b.link(b.cur, head)
	b.cur = head
	if s.Cond != nil {
		b.add(s.Cond)
	}
	exit := b.newBlock()
	post := b.newBlock()
	if s.Cond != nil {
		b.link(head, exit)
	}
	b.frames = append(b.frames, frame{label, exit, post})
	body := b.newBlock()
	b.link(head, body)
	b.cur = body
	b.stmt(s.Body)
	b.link(b.cur, post)
	b.cur = post
	b.stmt(s.Post)
	b.link(b.cur, head)
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = exit
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt) {
	label := b.takeLabel()
	head := b.newBlock()
	b.link(b.cur, head)
	b.cur = head
	b.add(s) // header node: WalkExprs yields key, value, and operand
	exit := b.newBlock()
	b.link(head, exit)
	b.frames = append(b.frames, frame{label, exit, head})
	body := b.newBlock()
	b.link(head, body)
	b.cur = body
	b.stmt(s.Body)
	b.link(b.cur, head)
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = exit
}

func (b *cfgBuilder) switchStmt(init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt) {
	label := b.takeLabel()
	b.stmt(init)
	if tag != nil {
		b.add(tag)
	}
	if assign != nil {
		b.add(assign)
	}
	header := b.cur
	exit := b.newBlock()
	b.frames = append(b.frames, frame{label, exit, nil})
	clauses := body.List
	bodies := make([]*Block, len(clauses))
	for i := range clauses {
		bodies[i] = b.newBlock()
	}
	hasDefault := false
	for i, cl := range clauses {
		cc := cl.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		b.link(header, bodies[i])
		b.cur = bodies[i]
		for _, e := range cc.List {
			b.add(e)
		}
		for _, t := range cc.Body {
			b.stmt(t)
		}
		if b.fallFrom != nil {
			if i+1 < len(clauses) {
				b.link(b.fallFrom, bodies[i+1])
			}
			b.fallFrom = nil
		}
		b.link(b.cur, exit)
	}
	if !hasDefault {
		b.link(header, exit)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = exit
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt) {
	label := b.takeLabel()
	header := b.cur
	exit := b.newBlock()
	b.frames = append(b.frames, frame{label, exit, nil})
	for _, cl := range s.Body.List {
		cc := cl.(*ast.CommClause)
		body := b.newBlock()
		b.link(header, body)
		b.cur = body
		b.stmt(cc.Comm)
		for _, t := range cc.Body {
			b.stmt(t)
		}
		b.link(b.cur, exit)
	}
	if len(s.Body.List) == 0 {
		b.link(header, exit)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = exit
}

func (b *cfgBuilder) branchStmt(s *ast.BranchStmt) {
	switch s.Tok {
	case token.BREAK:
		if f := b.findFrame(s.Label, false); f != nil {
			b.link(b.cur, f.brk)
		}
		b.cur = b.newBlock()
	case token.CONTINUE:
		if f := b.findFrame(s.Label, true); f != nil {
			b.link(b.cur, f.cont)
		}
		b.cur = b.newBlock()
	case token.GOTO:
		b.add(s)
		b.cur = b.newBlock()
	case token.FALLTHROUGH:
		b.fallFrom = b.cur
		b.cur = b.newBlock()
	}
}
