package flow

import "go/ast"

// Forward runs a forward fixed-point dataflow analysis over the CFG and
// returns the in-state of every reachable block. The transfer function
// xfer is applied to each node of a block in order and may mutate and
// return its argument; join must return the least upper bound of its
// arguments without mutating either; equal decides convergence; clone
// copies a state.
func Forward[T any](c *CFG, entry T, xfer func(T, ast.Node) T, join func(T, T) T, clone func(T) T, equal func(T, T) bool) map[*Block]T {
	in := map[*Block]T{c.Entry: entry}
	work := []*Block{c.Entry}
	inWork := map[*Block]bool{c.Entry: true}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inWork[b] = false
		state := clone(in[b])
		for _, n := range b.Nodes {
			state = xfer(state, n)
		}
		for _, s := range b.Succs {
			cur, ok := in[s]
			var next T
			if !ok {
				next = clone(state)
			} else {
				next = join(cur, state)
				if equal(next, cur) {
					continue
				}
			}
			in[s] = next
			if !inWork[s] {
				inWork[s] = true
				work = append(work, s)
			}
		}
	}
	return in
}

// Facts is the string-set lattice most analyzers need: a fact is present
// or absent, and joining unions the sets.
type Facts map[string]bool

// Clone copies the fact set.
func (f Facts) Clone() Facts {
	c := make(Facts, len(f))
	for k := range f {
		c[k] = true
	}
	return c
}

func factsJoin(a, b Facts) Facts {
	u := a.Clone()
	for k := range b {
		u[k] = true
	}
	return u
}

func factsEqual(a, b Facts) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// ForwardFacts runs Forward with the union lattice and returns the facts
// holding immediately before each CFG node. Nodes of unreachable blocks
// map to the empty set.
func ForwardFacts(c *CFG, entry Facts, xfer func(Facts, ast.Node) Facts) map[ast.Node]Facts {
	in := Forward(c, entry, xfer, factsJoin, Facts.Clone, factsEqual)
	before := make(map[ast.Node]Facts)
	for _, b := range c.Blocks {
		state, ok := in[b]
		if !ok {
			state = Facts{}
		}
		state = state.Clone()
		for _, n := range b.Nodes {
			before[n] = state.Clone()
			state = xfer(state, n)
		}
	}
	return before
}
