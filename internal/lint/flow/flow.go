// Package flow gives ijlint's analyzers the interprocedural facts that
// per-file AST walks cannot see: a module-wide static call graph
// (type-informed, method-set aware, with function-value tracking for the
// callback style the engine uses), a per-function control-flow graph, and
// a small forward fixed-point dataflow engine over it.
//
// The design trades precision for zero dependencies and predictable cost:
//
//   - Calls through interfaces resolve to every module type whose method
//     set satisfies the interface (class-hierarchy analysis).
//   - Function values are tracked flow-insensitively: a func literal or
//     function reference assigned to a variable, stored in a struct
//     field, passed as an argument, or returned from a function may be
//     called wherever that variable, field, parameter, or call result is
//     invoked.
//   - Collections are opaque: function values stored in slices, maps, or
//     channels are lost. None of the engine's callbacks travel that way.
//
// Everything is a may-analysis: call edges are over-approximate, so
// analyzers built on the graph err toward reporting, never silence.
package flow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// Unit is one type-checked package handed to the graph builder. It
// mirrors the lint loader's Package without importing it (lint imports
// flow, not the reverse).
type Unit struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Node is one function in the call graph: a declared function or method
// (Func set) or a function literal (Lit set).
type Node struct {
	Func *types.Func  // declared function or method; nil for literals
	Lit  *ast.FuncLit // function literal; nil for declarations
	Body *ast.BlockStmt
	Unit *Unit

	cfg *CFG
}

// String names the node for diagnostics.
func (n *Node) String() string {
	if n.Func != nil {
		return n.Func.FullName()
	}
	pos := n.Unit.Fset.Position(n.Lit.Pos())
	return fmt.Sprintf("func literal at %s:%d", filepath.Base(pos.Filename), pos.Line)
}

// Signature returns the node's function signature.
func (n *Node) Signature() *types.Signature {
	if n.Func != nil {
		return n.Func.Type().(*types.Signature)
	}
	if sig, ok := n.Unit.Info.TypeOf(n.Lit).(*types.Signature); ok {
		return sig
	}
	return types.NewSignatureType(nil, nil, nil, nil, nil, false)
}

// Pos returns the node's declaration position.
func (n *Node) Pos() token.Pos {
	if n.Func != nil {
		return n.Func.Pos()
	}
	return n.Lit.Pos()
}

// Graph is the module-wide call graph plus the flow facts needed to
// resolve indirect calls.
type Graph struct {
	Units []*Unit

	nodes  []*Node
	byFunc map[*types.Func]*Node
	byLit  map[*ast.FuncLit]*Node

	// flows[obj] lists the function nodes whose values may be stored in
	// obj — a variable, struct field, or parameter of function type.
	flows map[types.Object][]*Node

	named []*types.Named // module named types, for interface resolution
	impls map[implKey][]*Node
	memo  map[string]any
}

type implKey struct {
	iface  *types.Interface
	method string
}

// Build constructs the call graph over the given units.
func Build(units []*Unit) *Graph {
	g := &Graph{
		Units:  units,
		byFunc: make(map[*types.Func]*Node),
		byLit:  make(map[*ast.FuncLit]*Node),
		flows:  make(map[types.Object][]*Node),
		impls:  make(map[implKey][]*Node),
		memo:   make(map[string]any),
	}
	for _, u := range units {
		u := u
		for _, f := range u.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch d := n.(type) {
				case *ast.FuncDecl:
					if d.Body == nil {
						return true
					}
					fn, ok := u.Info.Defs[d.Name].(*types.Func)
					if !ok {
						return true
					}
					nd := &Node{Func: fn, Body: d.Body, Unit: u}
					g.nodes = append(g.nodes, nd)
					g.byFunc[fn] = nd
				case *ast.FuncLit:
					nd := &Node{Lit: d, Body: d.Body, Unit: u}
					g.nodes = append(g.nodes, nd)
					g.byLit[d] = nd
				}
				return true
			})
		}
		scope := u.Pkg.Scope()
		for _, name := range scope.Names() {
			if tn, ok := scope.Lookup(name).(*types.TypeName); ok && !tn.IsAlias() {
				if named, ok := tn.Type().(*types.Named); ok {
					g.named = append(g.named, named)
				}
			}
		}
	}
	newFlowBuilder(g).build()
	return g
}

// Nodes returns every function and literal of the module, in source order
// per unit.
func (g *Graph) Nodes() []*Node { return g.nodes }

// NodeOf returns the node for a declared function or method, or nil for
// functions outside the built units.
func (g *Graph) NodeOf(fn *types.Func) *Node {
	if fn == nil {
		return nil
	}
	return g.byFunc[fn.Origin()]
}

// NodeForLit returns the node of a function literal.
func (g *Graph) NodeForLit(lit *ast.FuncLit) *Node { return g.byLit[lit] }

// CFG returns the node's control-flow graph, building it on first use.
func (g *Graph) CFG(n *Node) *CFG {
	if n.cfg == nil {
		n.cfg = buildCFG(n.Body)
	}
	return n.cfg
}

// Memo caches an analyzer's module-wide computation on the graph so a
// per-package Run does the expensive derivation once.
func (g *Graph) Memo(key string, build func() any) any {
	if v, ok := g.memo[key]; ok {
		return v
	}
	v := build()
	g.memo[key] = v
	return v
}

// FuncValues returns the function nodes that may be stored in obj.
func (g *Graph) FuncValues(obj types.Object) []*Node { return g.flows[obj] }

// Callees resolves a call expression inside unit u to the module function
// nodes it may invoke. Calls to functions outside the built units (the
// standard library) resolve to nothing.
func (g *Graph) Callees(u *Unit, call *ast.CallExpr) []*Node {
	switch fun := unwrap(call.Fun).(type) {
	case *ast.FuncLit:
		if n := g.byLit[fun]; n != nil {
			return []*Node{n}
		}
	case *ast.Ident:
		switch o := u.Info.Uses[fun].(type) {
		case *types.Func:
			if n := g.NodeOf(o); n != nil {
				return []*Node{n}
			}
		case *types.Var:
			return g.flows[o]
		}
	case *ast.SelectorExpr:
		if sel, ok := u.Info.Selections[fun]; ok {
			switch sel.Kind() {
			case types.MethodVal, types.MethodExpr:
				fn, ok := sel.Obj().(*types.Func)
				if !ok {
					return nil
				}
				if iface, ok := sel.Recv().Underlying().(*types.Interface); ok {
					return g.implementers(iface, fn.Name())
				}
				if n := g.NodeOf(fn); n != nil {
					return []*Node{n}
				}
			case types.FieldVal:
				return g.flows[sel.Obj()]
			}
			return nil
		}
		// Qualified identifier: pkg.Func or pkg.Var.
		switch o := u.Info.Uses[fun.Sel].(type) {
		case *types.Func:
			if n := g.NodeOf(o); n != nil {
				return []*Node{n}
			}
		case *types.Var:
			return g.flows[o]
		}
	}
	return nil
}

// implementers resolves an interface method to every module type whose
// method set satisfies the interface.
func (g *Graph) implementers(iface *types.Interface, method string) []*Node {
	key := implKey{iface, method}
	if ns, ok := g.impls[key]; ok {
		return ns
	}
	ns := []*Node{}
	for _, named := range g.named {
		if types.IsInterface(named) {
			continue
		}
		ptr := types.NewPointer(named)
		if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(ptr, true, named.Obj().Pkg(), method)
		if fn, ok := obj.(*types.Func); ok {
			if n := g.NodeOf(fn); n != nil {
				ns = append(ns, n)
			}
		}
	}
	g.impls[key] = ns
	return ns
}

// unwrap strips parentheses and generic instantiation indices from a
// callee expression.
func unwrap(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.IndexListExpr:
			e = x.X
		default:
			return e
		}
	}
}

// WalkExprs visits the expression operands of one CFG node (or any
// statement) without descending into nested function literal bodies —
// literals are their own graph nodes — or the nested statements of
// composite statements: a range header contributes only its key, value,
// and operand. The visit function follows the ast.Inspect contract.
func WalkExprs(n ast.Node, visit func(ast.Node) bool) {
	if rs, ok := n.(*ast.RangeStmt); ok {
		walkShallow(rs.Key, visit)
		walkShallow(rs.Value, visit)
		walkShallow(rs.X, visit)
		return
	}
	walkShallow(n, visit)
}

func walkShallow(n ast.Node, visit func(ast.Node) bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(c ast.Node) bool {
		if c == nil {
			return false
		}
		if _, ok := c.(*ast.FuncLit); ok {
			visit(c)
			return false
		}
		return visit(c)
	})
}
