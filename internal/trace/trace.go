// Package trace simulates the Internet packet traces of the paper's
// real-data experiments and builds packet trains from them.
//
// The paper uses 15-minute extracts of the MAWI trans-Pacific backbone
// archive (traces P03–P08, Table 2). Those captures are not redistributable
// here, so the package synthesises traces with the same interface the
// experiments consume: per-packet (flow, arrival time) records over a
// 15-minute window, calibrated per trace to the paper's published packet
// and packet-train counts. Packet trains — maximal runs of same-flow
// packets whose inter-arrival gaps stay below a cut-off (500 ms in the
// paper, after Jain's packet-train model) — are then built exactly as the
// paper describes, and their [start, end] durations form the interval data.
package trace

import (
	"cmp"
	"fmt"
	"math/rand"
	"slices"

	"intervaljoin/internal/interval"
	"intervaljoin/internal/relation"
)

// Packet is one captured packet: the flow it belongs to (a source→destination
// IP pair in the real trace) and its arrival time at the observation point,
// in milliseconds from the window start.
type Packet struct {
	Flow int32
	Time int64
}

// Profile describes one trace's aggregate statistics — the calibration
// target for the synthesiser.
type Profile struct {
	// Name is the paper's trace id ("P03".."P08").
	Name string
	// Date is the capture date from Table 2 (dd-mm-yy).
	Date string
	// Packets is the total packet count of the trace.
	Packets int
	// Trains is the packet-train count the paper derives with the 500 ms
	// cut-off.
	Trains int
	// DurationMs is the capture window (15 minutes).
	DurationMs int64
}

// DefaultCutoffMs is the paper's packet-train inter-arrival cut-off.
const DefaultCutoffMs = 500

// MAWI lists the six traces of Table 2 with the paper's published packet
// and train counts.
var MAWI = []Profile{
	{Name: "P03", Date: "01-01-03", Packets: 1_500_000, Trains: 120_000, DurationMs: 900_000},
	{Name: "P04", Date: "01-01-04", Packets: 200_000, Trains: 18_000, DurationMs: 900_000},
	{Name: "P05", Date: "15-01-05", Packets: 2_900_000, Trains: 207_000, DurationMs: 900_000},
	{Name: "P06", Date: "01-01-06", Packets: 3_400_000, Trains: 351_000, DurationMs: 900_000},
	{Name: "P07", Date: "15-01-07", Packets: 9_100_000, Trains: 359_000, DurationMs: 900_000},
	{Name: "P08", Date: "01-01-08", Packets: 7_300_000, Trains: 307_000, DurationMs: 900_000},
}

// ProfileByName returns the named MAWI profile.
func ProfileByName(name string) (Profile, error) {
	for _, p := range MAWI {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("trace: unknown profile %q", name)
}

// Synthesize generates a packet stream matching the profile's packet and
// train counts in expectation, scaled by scale (0 < scale <= 1 keeps run
// times manageable; scale 1 reproduces the full trace size). The result is
// sorted by arrival time.
//
// The generator follows the packet-train model: each flow is a renewal
// process whose inter-arrival gaps are a mixture of intra-train gaps (well
// below the cut-off) and inter-train gaps (well above it); the mixture
// weight is chosen so that the expected number of gaps exceeding the cut-off
// reproduces the profile's train count.
func Synthesize(p Profile, scale float64, seed int64) ([]Packet, error) {
	if scale <= 0 || scale > 1 {
		return nil, fmt.Errorf("trace: scale %v outside (0, 1]", scale)
	}
	packets := int(float64(p.Packets) * scale)
	trains := int(float64(p.Trains) * scale)
	if packets < 1 || trains < 1 {
		return nil, fmt.Errorf("trace: scale %v leaves no packets or trains for %s", scale, p.Name)
	}
	if trains > packets {
		return nil, fmt.Errorf("trace: profile %s wants more trains than packets", p.Name)
	}
	rng := rand.New(rand.NewSource(seed))

	// Target ~24 trains per flow (heavy flows dominate backbone traffic);
	// at least one flow.
	flows := trains / 24
	if flows < 1 {
		flows = 1
	}
	packetsPerFlow := packets / flows
	if packetsPerFlow < 1 {
		packetsPerFlow = 1
	}
	// Expected trains per flow = 1 + (#gaps >= cutoff). With g gaps per
	// flow and inter-train probability q: trains/flow = 1 + g*q.
	gaps := packetsPerFlow - 1
	q := 0.0
	if gaps > 0 {
		q = (float64(trains)/float64(flows) - 1) / float64(gaps)
		if q < 0 {
			q = 0
		}
		if q > 1 {
			q = 1
		}
	}
	// Mean gap sizes: intra-train gaps exponential with mean cutoff/10;
	// inter-train gaps cutoff + exponential tail sized so each flow's
	// packets roughly fill the window.
	intraMean := float64(DefaultCutoffMs) / 10
	expectedIntra := float64(gaps) * (1 - q) * intraMean
	interCount := float64(gaps) * q
	interMean := float64(DefaultCutoffMs) * 2
	if interCount > 0 {
		budget := float64(p.DurationMs)*0.8 - expectedIntra
		if budget/interCount > interMean {
			interMean = budget / interCount
		}
	}

	out := make([]Packet, 0, flows*packetsPerFlow)
	for f := 0; f < flows; f++ {
		// Stagger flow start times across the first fifth of the window.
		t := rng.Int63n(p.DurationMs / 5)
		for i := 0; i < packetsPerFlow; i++ {
			if t >= p.DurationMs {
				t = p.DurationMs - 1
			}
			out = append(out, Packet{Flow: int32(f), Time: t})
			if i == packetsPerFlow-1 {
				break
			}
			if rng.Float64() < q {
				gap := int64(DefaultCutoffMs + rng.ExpFloat64()*(interMean-DefaultCutoffMs))
				if gap < DefaultCutoffMs {
					gap = DefaultCutoffMs
				}
				t += gap
			} else {
				gap := int64(rng.ExpFloat64() * intraMean)
				if gap >= DefaultCutoffMs {
					gap = DefaultCutoffMs - 1
				}
				t += gap
			}
		}
	}
	slices.SortFunc(out, func(a, b Packet) int {
		if c := cmp.Compare(a.Time, b.Time); c != 0 {
			return c
		}
		return cmp.Compare(a.Flow, b.Flow)
	})
	return out, nil
}

// BuildTrains groups each flow's packets into packet trains: a new train
// starts whenever the gap to the previous packet of the same flow is at
// least cutoffMs (the paper's threshold is "less than" for staying in the
// train). It returns the train duration intervals [first arrival, last
// arrival], sorted by start.
func BuildTrains(packets []Packet, cutoffMs int64) []interval.Interval {
	if cutoffMs <= 0 {
		cutoffMs = DefaultCutoffMs
	}
	// Gather per-flow arrival lists.
	byFlow := make(map[int32][]int64)
	for _, p := range packets {
		byFlow[p.Flow] = append(byFlow[p.Flow], p.Time)
	}
	var trains []interval.Interval
	for _, times := range byFlow {
		slices.Sort(times)
		start := times[0]
		prev := times[0]
		for _, t := range times[1:] {
			if t-prev >= cutoffMs {
				trains = append(trains, interval.New(start, prev))
				start = t
			}
			prev = t
		}
		trains = append(trains, interval.New(start, prev))
	}
	slices.SortFunc(trains, interval.Interval.Compare)
	return trains
}

// ReplicateTrains tiles copies of the trains until the target count is
// reached, the paper's procedure for growing each trace's train set to a
// fixed 3M-interval dataset. Copies keep the original time window (the
// joins' temporal density grows, as in the paper); a deterministic jitter
// below the train granularity decorrelates exact endpoints.
func ReplicateTrains(trains []interval.Interval, target int, windowMs int64, seed int64) []interval.Interval {
	if len(trains) == 0 || target <= len(trains) {
		out := make([]interval.Interval, len(trains))
		copy(out, trains)
		return out
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]interval.Interval, 0, target)
	out = append(out, trains...)
	for len(out) < target {
		src := trains[rng.Intn(len(trains))]
		jitter := rng.Int63n(21) - 10
		s := src.Start + jitter
		e := src.End + jitter
		if s < 0 {
			e -= s
			s = 0
		}
		if e >= windowMs {
			s -= e - (windowMs - 1)
			e = windowMs - 1
			if s < 0 {
				s = 0
			}
		}
		out = append(out, interval.New(s, e))
	}
	return out
}

// TrainsRelation wraps train intervals as a single-attribute relation.
func TrainsRelation(name string, trains []interval.Interval) *relation.Relation {
	return relation.FromIntervals(name, trains)
}
