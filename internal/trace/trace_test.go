package trace

import (
	"testing"

	"intervaljoin/internal/interval"
)

func TestProfileByName(t *testing.T) {
	p, err := ProfileByName("P04")
	if err != nil || p.Packets != 200_000 || p.Trains != 18_000 {
		t.Fatalf("P04 = %+v, %v", p, err)
	}
	if _, err := ProfileByName("P99"); err == nil {
		t.Fatal("unknown profile accepted")
	}
	if len(MAWI) != 6 {
		t.Fatalf("MAWI profiles = %d, want 6 (Table 2)", len(MAWI))
	}
}

func TestBuildTrainsHandConstructed(t *testing.T) {
	// Flow 0: gaps 100, 600, 100 -> two trains [0,200] and [800,900].
	// Flow 1: single packet -> one point train.
	// Boundary: a gap of exactly the cut-off starts a new train.
	packets := []Packet{
		{Flow: 0, Time: 0}, {Flow: 0, Time: 100}, {Flow: 0, Time: 200},
		{Flow: 0, Time: 800}, {Flow: 0, Time: 900},
		{Flow: 1, Time: 50},
		{Flow: 2, Time: 0}, {Flow: 2, Time: 500}, // gap == cutoff: split
	}
	trains := BuildTrains(packets, 500)
	want := []interval.Interval{
		{Start: 0, End: 0}, {Start: 0, End: 200}, {Start: 50, End: 50},
		{Start: 500, End: 500}, {Start: 800, End: 900},
	}
	if len(trains) != len(want) {
		t.Fatalf("trains = %v, want %v", trains, want)
	}
	for i := range want {
		if trains[i] != want[i] {
			t.Fatalf("trains = %v, want %v", trains, want)
		}
	}
}

func TestBuildTrainsUnsortedInput(t *testing.T) {
	packets := []Packet{
		{Flow: 0, Time: 900}, {Flow: 0, Time: 0}, {Flow: 0, Time: 100},
	}
	trains := BuildTrains(packets, 500)
	if len(trains) != 2 || trains[0] != interval.New(0, 100) || trains[1] != interval.New(900, 900) {
		t.Fatalf("trains = %v", trains)
	}
}

func TestBuildTrainsDefaultCutoff(t *testing.T) {
	packets := []Packet{{Flow: 0, Time: 0}, {Flow: 0, Time: 499}, {Flow: 0, Time: 1100}}
	trains := BuildTrains(packets, 0) // default 500
	if len(trains) != 2 {
		t.Fatalf("trains = %v, want 2 with default cut-off", trains)
	}
}

func TestSynthesizeCalibration(t *testing.T) {
	for _, p := range MAWI {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			const scale = 0.02
			packets, err := Synthesize(p, scale, 1)
			if err != nil {
				t.Fatal(err)
			}
			wantPackets := float64(p.Packets) * scale
			if f := float64(len(packets)) / wantPackets; f < 0.9 || f > 1.1 {
				t.Errorf("packets = %d, want ~%.0f", len(packets), wantPackets)
			}
			trains := BuildTrains(packets, DefaultCutoffMs)
			wantTrains := float64(p.Trains) * scale
			if f := float64(len(trains)) / wantTrains; f < 0.7 || f > 1.3 {
				t.Errorf("trains = %d, want ~%.0f (ratio %.2f)", len(trains), wantTrains, f)
			}
			for _, iv := range trains {
				if iv.Start < 0 || iv.End >= p.DurationMs {
					t.Fatalf("train %v outside the capture window", iv)
				}
			}
			// Sorted by arrival time.
			for i := 1; i < len(packets); i++ {
				if packets[i].Time < packets[i-1].Time {
					t.Fatal("packets not sorted")
				}
			}
		})
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	p, _ := ProfileByName("P04")
	a, err := Synthesize(p, 0.05, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Synthesize(p, 0.05, 9)
	if len(a) != len(b) {
		t.Fatal("same seed produced different sizes")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different packets")
		}
	}
}

func TestSynthesizeErrors(t *testing.T) {
	p, _ := ProfileByName("P04")
	if _, err := Synthesize(p, 0, 1); err == nil {
		t.Error("zero scale accepted")
	}
	if _, err := Synthesize(p, 1.5, 1); err == nil {
		t.Error("scale > 1 accepted")
	}
	if _, err := Synthesize(p, 0.000001, 1); err == nil {
		t.Error("scale that leaves no trains accepted")
	}
}

func TestReplicateTrains(t *testing.T) {
	trains := []interval.Interval{{Start: 10, End: 20}, {Start: 100, End: 400}}
	out := ReplicateTrains(trains, 1000, 900_000, 3)
	if len(out) != 1000 {
		t.Fatalf("replicated to %d, want 1000", len(out))
	}
	for _, iv := range out {
		if iv.Start < 0 || iv.End >= 900_000 || !iv.Valid() {
			t.Fatalf("replicated train %v out of window", iv)
		}
	}
	// Originals preserved at the front.
	if out[0] != trains[0] || out[1] != trains[1] {
		t.Fatal("original trains not preserved")
	}
	// No-op when target below current size.
	small := ReplicateTrains(trains, 1, 900_000, 3)
	if len(small) != 2 {
		t.Fatalf("shrinking replicate returned %d", len(small))
	}
	if len(ReplicateTrains(nil, 10, 900_000, 3)) != 0 {
		t.Fatal("empty input should remain empty")
	}
}

func TestTrainsRelation(t *testing.T) {
	r := TrainsRelation("T", []interval.Interval{{Start: 0, End: 5}})
	if r.Schema.Name != "T" || r.Len() != 1 {
		t.Fatalf("relation = %+v", r)
	}
}
