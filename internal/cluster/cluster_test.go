package cluster

import (
	"testing"
	"time"

	"intervaljoin/internal/mr"
)

func metricsWith(records, pairs int64, loads []int64, cycles int) *mr.Metrics {
	m := mr.NewMetrics("test")
	m.Cycles = cycles
	m.MapInputRecords = records
	m.IntermediatePairs = pairs
	for i, l := range loads {
		m.ReducerPairs[int64(i)] = l
	}
	return m
}

func TestValidate(t *testing.T) {
	if err := Paper2014().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Paper2014()
	bad.Slots = 0
	if bad.Validate() == nil {
		t.Error("0 slots accepted")
	}
	bad = Paper2014()
	bad.ShufflePairsPerSec = 0
	if bad.Validate() == nil {
		t.Error("0 shuffle rate accepted")
	}
	bad = Paper2014()
	bad.CycleOverhead = -time.Second
	if bad.Validate() == nil {
		t.Error("negative overhead accepted")
	}
}

func TestEstimateMonotonicInPairs(t *testing.T) {
	p := Paper2014()
	small, err := Estimate(p, metricsWith(1000, 10_000, []int64{100, 100}, 1))
	if err != nil {
		t.Fatal(err)
	}
	big, err := Estimate(p, metricsWith(1000, 10_000_000, []int64{100, 100}, 1))
	if err != nil {
		t.Fatal(err)
	}
	if big <= small {
		t.Fatalf("more pairs did not cost more: %v vs %v", big, small)
	}
}

func TestEstimateStragglerDominates(t *testing.T) {
	p := Paper2014()
	balanced := metricsWith(0, 0, []int64{100, 100, 100, 100}, 1)
	skewed := metricsWith(0, 0, []int64{397, 1, 1, 1}, 1)
	tb, err := Estimate(p, balanced)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := Estimate(p, skewed)
	if err != nil {
		t.Fatal(err)
	}
	// Same total pairs (400); the skewed run waits on its straggler.
	if ts <= tb {
		t.Fatalf("skewed %v not slower than balanced %v", ts, tb)
	}
}

func TestEstimateCycleOverhead(t *testing.T) {
	p := Paper2014()
	one, _ := Estimate(p, metricsWith(0, 0, nil, 1))
	three, _ := Estimate(p, metricsWith(0, 0, nil, 3))
	if three-one != 2*p.CycleOverhead {
		t.Fatalf("cycle overhead accounting wrong: %v vs %v", one, three)
	}
	zero, _ := Estimate(p, metricsWith(0, 0, nil, 0))
	if zero != one {
		t.Fatal("0 cycles must be treated as 1")
	}
}

func TestLPTMakespan(t *testing.T) {
	if got := lptMakespan(nil, 4); got != 0 {
		t.Fatalf("empty makespan = %d", got)
	}
	// 6 loads of 10 on 3 slots: 20 each.
	if got := lptMakespan([]int64{10, 10, 10, 10, 10, 10}, 3); got != 20 {
		t.Fatalf("makespan = %d, want 20", got)
	}
	// A giant load dominates regardless of slots.
	if got := lptMakespan([]int64{100, 1, 1, 1}, 8); got != 100 {
		t.Fatalf("makespan = %d, want 100", got)
	}
	// More loads than slots pack greedily: {5,4,3,3,3} on 2 slots ->
	// LPT: 5+3, 4+3+3 -> max 10.
	if got := lptMakespan([]int64{3, 5, 3, 4, 3}, 2); got != 10 {
		t.Fatalf("makespan = %d, want 10", got)
	}
}

func TestFormatHHMM(t *testing.T) {
	for _, tc := range []struct {
		d    time.Duration
		want string
	}{
		{90 * time.Minute, "01:30"},
		{29 * time.Second, "00:00"},
		{31 * time.Second, "00:01"},
		{3 * time.Hour, "03:00"},
	} {
		if got := FormatHHMM(tc.d); got != tc.want {
			t.Errorf("FormatHHMM(%v) = %q, want %q", tc.d, got, tc.want)
		}
	}
}

// TestEstimateShapeMatchesPaperTable1: plugging the measured metric ratios
// of Table 1 into the model must preserve the paper's ordering
// rccis < all-rep at every size.
func TestEstimateShapeMatchesPaperTable1(t *testing.T) {
	p := Paper2014()
	// Ratios from EXPERIMENTS.md at nI=2000 scaled up 500x to paper size:
	// rccis ~12.5K pairs balanced; all-rep 36.6K pairs, right-most reducer
	// holding ~1/3 of everything.
	rccis := metricsWith(3_000_000, 6_250_000, balancedLoads(6_250_000, 16), 2)
	allrepLoads := balancedLoads(12_000_000, 16)
	allrepLoads[15] = 6_000_000 // straggler
	allrep := metricsWith(3_000_000, 18_300_000, allrepLoads, 1)
	tr, err := Estimate(p, rccis)
	if err != nil {
		t.Fatal(err)
	}
	ta, err := Estimate(p, allrep)
	if err != nil {
		t.Fatal(err)
	}
	if tr >= ta {
		t.Fatalf("model ranks rccis (%v) above all-rep (%v)", tr, ta)
	}
}

func balancedLoads(total int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = total / int64(n)
	}
	return out
}
