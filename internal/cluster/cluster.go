// Package cluster converts the engine's measured communication metrics into
// an estimated wall-clock time on a distributed cluster, so local runs can
// be compared with the paper's hh:mm numbers in shape *and* rough scale.
//
// The model is deliberately simple — the same level of detail as the cost
// model in Zhang et al. that the paper builds on: a job's time is its map
// scan, plus shuffling every intermediate pair across the network, plus the
// straggler reduce task (each reduce task runs on its own slot until slots
// run out), plus a fixed per-cycle scheduling overhead. All constants are
// parameters, with defaults loosely calibrated to the paper's 2008-era
// 16-core Hadoop cluster.
package cluster

import (
	"fmt"
	"time"

	"intervaljoin/internal/mr"
)

// Params describes the modelled cluster.
type Params struct {
	// Slots is the number of reduce tasks that can run concurrently
	// (the paper runs 16 reduce processes).
	Slots int
	// MapRecordsPerSec is the scan+map throughput of the whole cluster.
	MapRecordsPerSec float64
	// ShufflePairsPerSec is the map→reduce network throughput in
	// key-value pairs for the whole cluster.
	ShufflePairsPerSec float64
	// ReducePairsPerSec is one reduce task's processing rate over its
	// received pairs (join compute is accounted separately by callers who
	// know their output size; this rate covers deserialisation and
	// grouping).
	ReducePairsPerSec float64
	// CycleOverhead is the fixed scheduling/startup cost per MR cycle
	// (job setup, task launch, commit).
	CycleOverhead time.Duration
}

// Paper2014 returns parameters loosely calibrated to the paper's testbed:
// a 16-core blade cluster running Hadoop 0.20 — tens of seconds of job
// overhead and single-digit-MB/s effective shuffle rates.
func Paper2014() Params {
	return Params{
		Slots:              16,
		MapRecordsPerSec:   200_000,
		ShufflePairsPerSec: 150_000,
		ReducePairsPerSec:  100_000,
		CycleOverhead:      20 * time.Second,
	}
}

// Validate reports the first nonsensical parameter.
func (p Params) Validate() error {
	if p.Slots < 1 {
		return fmt.Errorf("cluster: slots = %d", p.Slots)
	}
	if p.MapRecordsPerSec <= 0 || p.ShufflePairsPerSec <= 0 || p.ReducePairsPerSec <= 0 {
		return fmt.Errorf("cluster: rates must be positive")
	}
	if p.CycleOverhead < 0 {
		return fmt.Errorf("cluster: negative cycle overhead")
	}
	return nil
}

// Estimate predicts the cluster wall-clock time of a run described by the
// aggregated metrics of its MR cycles.
func Estimate(p Params, m *mr.Metrics) (time.Duration, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	cycles := m.Cycles
	if cycles < 1 {
		cycles = 1
	}
	mapTime := float64(m.MapInputRecords) / p.MapRecordsPerSec
	shuffleTime := float64(m.IntermediatePairs) / p.ShufflePairsPerSec

	// Reduce: schedule the per-reducer loads onto the slots (longest
	// processing time first would be optimal; Hadoop schedules greedily,
	// modelled here as LPT which is within 4/3 of optimal).
	loads := m.ReducerLoadVector()
	makespanPairs := lptMakespan(loads, p.Slots)
	reduceTime := float64(makespanPairs) / p.ReducePairsPerSec

	total := time.Duration((mapTime + shuffleTime + reduceTime) * float64(time.Second))
	total += time.Duration(cycles) * p.CycleOverhead
	return total, nil
}

// lptMakespan schedules loads onto slots with longest-processing-time-first
// and returns the busiest slot's total.
func lptMakespan(loads []int64, slots int) int64 {
	if len(loads) == 0 {
		return 0
	}
	// Sort descending (insertion into a copy; load vectors are small).
	sorted := make([]int64, len(loads))
	copy(sorted, loads)
	for i := 1; i < len(sorted); i++ {
		v := sorted[i]
		j := i - 1
		for j >= 0 && sorted[j] < v {
			sorted[j+1] = sorted[j]
			j--
		}
		sorted[j+1] = v
	}
	slotLoad := make([]int64, slots)
	for _, v := range sorted {
		min := 0
		for s := 1; s < slots; s++ {
			if slotLoad[s] < slotLoad[min] {
				min = s
			}
		}
		slotLoad[min] += v
	}
	var max int64
	for _, v := range slotLoad {
		if v > max {
			max = v
		}
	}
	return max
}

// FormatHHMM renders a duration the way the paper's tables do.
func FormatHHMM(d time.Duration) string {
	d = d.Round(time.Minute)
	h := d / time.Hour
	m := (d % time.Hour) / time.Minute
	return fmt.Sprintf("%02d:%02d", h, m)
}
