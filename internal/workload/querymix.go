package workload

import (
	"fmt"
	"math/rand"
)

// QueryWindow is one time-range query of a mix: the closed range [Lo, Hi].
type QueryWindow struct {
	Lo, Hi int64
}

// QueryMixSpec describes a zipfian time-range query mix: N windows whose
// centers cluster on a small set of hot spots with zipf-distributed
// popularity. Consecutive queries against the hot spots overlap heavily —
// the access pattern a semantic segment cache converts into partial and
// full hits — while tail queries land on rarely-visited ranges and stay
// cold. Skew tunes the zipf exponent: higher concentrates more of the mix
// on the hottest spot.
type QueryMixSpec struct {
	// N is the number of queries.
	N int
	// TMin and TMax bound the time range windows are drawn from.
	TMin, TMax int64
	// Hotspots is the number of hot centers spread across the range
	// (default 8).
	Hotspots int
	// Skew is the zipf exponent over hotspot ranks; must exceed 1
	// (default 1.5). Higher means the hottest spots absorb more queries.
	Skew float64
	// SpanMin and SpanMax bound the window length (defaults: 1/20 and 1/4
	// of the time range).
	SpanMin, SpanMax int64
	// Jitter shifts each window's center uniformly within ±Jitter around
	// its hotspot, so repeat visits overlap without coinciding (default:
	// half the mean span).
	Jitter int64
	// Seed makes the mix deterministic.
	Seed int64
}

func (s QueryMixSpec) withDefaults() QueryMixSpec {
	span := s.TMax - s.TMin
	if s.Hotspots <= 0 {
		s.Hotspots = 8
	}
	if s.Skew == 0 {
		s.Skew = 1.5
	}
	if s.SpanMin <= 0 {
		s.SpanMin = max64(1, span/20)
	}
	if s.SpanMax <= 0 {
		s.SpanMax = max64(s.SpanMin, span/4)
	}
	if s.Jitter <= 0 {
		s.Jitter = (s.SpanMin + s.SpanMax) / 4
	}
	return s
}

// Validate reports the first problem with the spec.
func (s QueryMixSpec) Validate() error {
	if s.N < 0 {
		return fmt.Errorf("workload: negative query count %d", s.N)
	}
	if s.TMax <= s.TMin {
		return fmt.Errorf("workload: empty time range [%d, %d]", s.TMin, s.TMax)
	}
	if s.Skew != 0 && s.Skew <= 1 {
		return fmt.Errorf("workload: zipf exponent %v must exceed 1", s.Skew)
	}
	if s.SpanMin < 0 || (s.SpanMax != 0 && s.SpanMax < s.SpanMin) {
		return fmt.Errorf("workload: bad span range [%d, %d]", s.SpanMin, s.SpanMax)
	}
	return nil
}

// ZipfQueryMix generates the query mix. Deterministic in the seed.
func ZipfQueryMix(spec QueryMixSpec) ([]QueryWindow, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	s := spec.withDefaults()
	rng := rand.New(rand.NewSource(s.Seed))
	ranks := rand.NewZipf(rng, s.Skew, 1, uint64(s.Hotspots-1))
	// Hot centers sit mid-stride across the range; a fixed shuffle decouples
	// rank popularity from time order so the hottest ranges are not all at
	// the range's low end.
	centers := make([]int64, s.Hotspots)
	stride := (s.TMax - s.TMin) / int64(s.Hotspots)
	for i := range centers {
		centers[i] = s.TMin + stride/2 + int64(i)*stride
	}
	rng.Shuffle(len(centers), func(i, j int) { centers[i], centers[j] = centers[j], centers[i] })

	out := make([]QueryWindow, s.N)
	for i := range out {
		c := centers[ranks.Uint64()]
		c += rng.Int63n(2*s.Jitter+1) - s.Jitter
		span := s.SpanMin
		if s.SpanMax > s.SpanMin {
			span += rng.Int63n(s.SpanMax - s.SpanMin + 1)
		}
		lo := c - span/2
		hi := lo + span
		if lo < s.TMin {
			lo, hi = s.TMin, s.TMin+span
		}
		if hi > s.TMax {
			hi = s.TMax
			lo = max64(s.TMin, hi-span)
		}
		out[i] = QueryWindow{Lo: lo, Hi: hi}
	}
	return out, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
