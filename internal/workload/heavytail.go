package workload

import (
	"intervaljoin/internal/relation"
	"intervaljoin/internal/trace"
)

// Heavy-tail scenario family (the skew benchmarks' inputs): workloads
// whose start points pile up at one end of the time range, so uniform
// partition boundaries hand a few reducers most of the work. The two
// members bracket the realistic range — a synthetic Zipf pile-up and a
// replay of the paper's MAWI packet-train traces, whose flow burstiness
// produces the same shape organically.

// HeavyTailSpec returns the Zipf-start scenario for one relation: start
// points Zipf-distributed over [0, 100K] (exponent 1.1, so the low end of
// the range holds most of the mass), lengths uniform [1, 100] as in
// Table 1. Under uniform boundaries partition 0 receives an order of
// magnitude more intervals than the mean — the straggler shape Figure 4
// shows for sequence queries, here induced by the data instead of the
// query.
func HeavyTailSpec(name string, n int, seed int64) Spec {
	return Spec{
		Name: name, NumIntervals: n,
		StartDist: Zipf, LengthDist: Uniform,
		TMin: 0, TMax: 100_000, IMin: 1, IMax: 100,
		Seed: seed,
	}
}

// MAWIReplay builds a relation by replaying one of the paper's MAWI trace
// profiles (P03..P08, Table 2): synthesise the packet stream at the given
// scale, cut it into packet trains with the paper's 500 ms gap rule, and
// replicate the trains to target intervals (0 keeps the natural count).
// Train starts inherit the flows' bursty arrivals, giving a heavy-tailed
// per-partition load without any tuning knob.
func MAWIReplay(name, profile string, scale float64, target int, seed int64) (*relation.Relation, error) {
	p, err := trace.ProfileByName(profile)
	if err != nil {
		return nil, err
	}
	packets, err := trace.Synthesize(p, scale, seed)
	if err != nil {
		return nil, err
	}
	trains := trace.BuildTrains(packets, trace.DefaultCutoffMs)
	if target > 0 {
		trains = trace.ReplicateTrains(trains, target, p.DurationMs, seed)
	}
	return trace.TrainsRelation(name, trains), nil
}
