// Package workload generates the synthetic interval datasets of the paper's
// evaluation. It mirrors the authors' generation script (Section 6.2): the
// parameters are the number of intervals (nI), the distribution of interval
// start points (dS), the distribution of interval lengths (dI), the time
// range [tmin, tmax] within which all intervals lie, and the minimum and
// maximum interval lengths [imin, imax].
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"intervaljoin/internal/interval"
	"intervaljoin/internal/relation"
)

// Distribution selects how starts or lengths are drawn.
type Distribution uint8

const (
	// Uniform draws uniformly over the legal range (the paper's default).
	Uniform Distribution = iota
	// Normal draws from a gaussian centred on the range's midpoint with a
	// σ of one sixth of the range, clamped to the range.
	Normal
	// Zipf skews mass towards the low end of the range (rank-1 heaviest),
	// modelling bursty event times.
	Zipf
	// Exponential draws from an exponential with mean one quarter of the
	// range, offset at the low end and clamped.
	Exponential
)

// String names the distribution as accepted by ParseDistribution.
func (d Distribution) String() string {
	switch d {
	case Uniform:
		return "uniform"
	case Normal:
		return "normal"
	case Zipf:
		return "zipf"
	case Exponential:
		return "exponential"
	}
	return fmt.Sprintf("distribution(%d)", uint8(d))
}

// ParseDistribution maps a name to a Distribution.
func ParseDistribution(s string) (Distribution, error) {
	switch s {
	case "uniform", "u":
		return Uniform, nil
	case "normal", "gaussian", "n":
		return Normal, nil
	case "zipf", "z":
		return Zipf, nil
	case "exponential", "exp", "e":
		return Exponential, nil
	}
	return 0, fmt.Errorf("workload: unknown distribution %q", s)
}

// Spec is one synthetic relation's generation recipe.
type Spec struct {
	// Name is the relation name.
	Name string
	// NumIntervals is nI.
	NumIntervals int
	// StartDist is dS, the distribution of interval start points.
	StartDist Distribution
	// LengthDist is dI, the distribution of interval lengths.
	LengthDist Distribution
	// TMin and TMax bound the time range; every generated interval lies
	// within [TMin, TMax].
	TMin, TMax int64
	// IMin and IMax bound the interval length.
	IMin, IMax int64
	// Seed makes generation deterministic.
	Seed int64
}

// Validate reports the first problem with the spec.
func (s Spec) Validate() error {
	if s.NumIntervals < 0 {
		return fmt.Errorf("workload: negative interval count %d", s.NumIntervals)
	}
	if s.TMax <= s.TMin {
		return fmt.Errorf("workload: empty time range [%d, %d]", s.TMin, s.TMax)
	}
	if s.IMin < 0 || s.IMax < s.IMin {
		return fmt.Errorf("workload: bad length range [%d, %d]", s.IMin, s.IMax)
	}
	if s.TMin+s.IMin > s.TMax {
		return fmt.Errorf("workload: minimum length %d does not fit the time range", s.IMin)
	}
	return nil
}

// Generate builds the relation described by the spec. Generation is
// deterministic in the seed.
func Generate(s Spec) (*relation.Relation, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(s.Seed))
	var zipfLen, zipfStart *rand.Zipf
	if s.LengthDist == Zipf {
		zipfLen = newZipf(rng, uint64(s.IMax-s.IMin))
	}
	ivs := make([]interval.Interval, s.NumIntervals)
	for i := range ivs {
		length := drawInRange(rng, s.LengthDist, zipfLen, s.IMin, s.IMax)
		maxStart := s.TMax - length
		if s.StartDist == Zipf && zipfStart == nil {
			zipfStart = newZipf(rng, uint64(s.TMax-s.TMin))
		}
		start := drawInRange(rng, s.StartDist, zipfStart, s.TMin, maxStart)
		ivs[i] = interval.New(start, start+length)
	}
	return relation.FromIntervals(s.Name, ivs), nil
}

// MustGenerate is Generate for tests and examples; it panics on error.
func MustGenerate(s Spec) *relation.Relation {
	r, err := Generate(s)
	if err != nil {
		panic(err)
	}
	return r
}

// newZipf builds a Zipf sampler over [0, span] with the conventional
// exponent 1.1.
func newZipf(rng *rand.Rand, span uint64) *rand.Zipf {
	if span == 0 {
		span = 1
	}
	return rand.NewZipf(rng, 1.1, 1, span)
}

// drawInRange samples one value in [lo, hi] under dist. A degenerate range
// returns lo.
func drawInRange(rng *rand.Rand, dist Distribution, zipf *rand.Zipf, lo, hi int64) int64 {
	if hi <= lo {
		return lo
	}
	span := hi - lo
	switch dist {
	case Uniform:
		return lo + rng.Int63n(span+1)
	case Normal:
		mean := float64(lo) + float64(span)/2
		sd := float64(span) / 6
		v := int64(math.Round(rng.NormFloat64()*sd + mean))
		return clamp(v, lo, hi)
	case Zipf:
		v := lo + int64(zipf.Uint64())
		return clamp(v, lo, hi)
	case Exponential:
		v := lo + int64(rng.ExpFloat64()*float64(span)/4)
		return clamp(v, lo, hi)
	}
	panic(fmt.Sprintf("workload: invalid distribution %d", uint8(dist)))
}

func clamp(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Table1Spec returns the paper's Table 1 generation parameters for one
// relation: dS, dI uniform, range [0, 100K], lengths [1, 100].
func Table1Spec(name string, n int, seed int64) Spec {
	return Spec{
		Name: name, NumIntervals: n,
		StartDist: Uniform, LengthDist: Uniform,
		TMin: 0, TMax: 100_000, IMin: 1, IMax: 100,
		Seed: seed,
	}
}

// Figure5Spec returns the Figure 5(a) parameters: range [0, 1000], maximum
// interval length 100, uniform distributions.
func Figure5Spec(name string, n int, seed int64) Spec {
	return Spec{
		Name: name, NumIntervals: n,
		StartDist: Uniform, LengthDist: Uniform,
		TMin: 0, TMax: 1000, IMin: 1, IMax: 100,
		Seed: seed,
	}
}

// Table3Spec returns the Table 3 parameters: range [0, 200K], uniform
// distributions, with the maximum interval length a free parameter.
func Table3Spec(name string, n int, maxLen, seed int64) Spec {
	return Spec{
		Name: name, NumIntervals: n,
		StartDist: Uniform, LengthDist: Uniform,
		TMin: 0, TMax: 200_000, IMin: 1, IMax: maxLen,
		Seed: seed,
	}
}

// Table4Specs returns the Table 4 generation parameters for query Q5's
// three relations: interval attribute I over [0, 100K] with lengths
// [1, 1000], and uniform real-valued attributes A and B. domainAB bounds the
// real-valued attribute domain (smaller domains make equality joins denser).
func Table4Specs(n1, n2, n3 int, domainAB int64, seed int64) []MultiSpec {
	ival := func() AttrSpec {
		return AttrSpec{StartDist: Uniform, LengthDist: Uniform, TMin: 0, TMax: 100_000, IMin: 1, IMax: 1000}
	}
	point := func() AttrSpec {
		return AttrSpec{StartDist: Uniform, LengthDist: Uniform, TMin: 0, TMax: domainAB, IMin: 0, IMax: 0}
	}
	return []MultiSpec{
		{Name: "R1", NumTuples: n1, Attrs: map[string]AttrSpec{"I": ival(), "A": point()}, AttrOrder: []string{"I", "A"}, Seed: seed},
		{Name: "R2", NumTuples: n2, Attrs: map[string]AttrSpec{"I": ival(), "B": point()}, AttrOrder: []string{"I", "B"}, Seed: seed + 1},
		{Name: "R3", NumTuples: n3, Attrs: map[string]AttrSpec{"I": ival(), "A": point(), "B": point()}, AttrOrder: []string{"I", "A", "B"}, Seed: seed + 2},
	}
}

// AttrSpec is the per-attribute recipe of a multi-attribute relation.
type AttrSpec struct {
	StartDist, LengthDist Distribution
	TMin, TMax            int64
	IMin, IMax            int64
}

// MultiSpec generates a multi-attribute relation (Gen-Matrix workloads).
type MultiSpec struct {
	Name      string
	NumTuples int
	Attrs     map[string]AttrSpec
	// AttrOrder fixes the column order.
	AttrOrder []string
	Seed      int64
}

// GenerateMulti builds the multi-attribute relation described by the spec.
func GenerateMulti(s MultiSpec) (*relation.Relation, error) {
	if len(s.AttrOrder) == 0 {
		return nil, fmt.Errorf("workload: multi spec %s has no attributes", s.Name)
	}
	rng := rand.New(rand.NewSource(s.Seed))
	rel := relation.New(relation.NewSchema(s.Name, s.AttrOrder...))
	zipfs := make(map[string][2]*rand.Zipf)
	for _, a := range s.AttrOrder {
		as, ok := s.Attrs[a]
		if !ok {
			return nil, fmt.Errorf("workload: multi spec %s missing attribute %s", s.Name, a)
		}
		single := Spec{Name: s.Name, TMin: as.TMin, TMax: as.TMax, IMin: as.IMin, IMax: as.IMax}
		if err := single.Validate(); err != nil {
			return nil, err
		}
		var zs, zl *rand.Zipf
		if as.StartDist == Zipf {
			zs = newZipf(rng, uint64(as.TMax-as.TMin))
		}
		if as.LengthDist == Zipf {
			zl = newZipf(rng, uint64(as.IMax-as.IMin))
		}
		zipfs[a] = [2]*rand.Zipf{zs, zl}
	}
	for i := 0; i < s.NumTuples; i++ {
		vals := make([]interval.Interval, len(s.AttrOrder))
		for j, a := range s.AttrOrder {
			as := s.Attrs[a]
			z := zipfs[a]
			length := drawInRange(rng, as.LengthDist, z[1], as.IMin, as.IMax)
			start := drawInRange(rng, as.StartDist, z[0], as.TMin, as.TMax-length)
			vals[j] = interval.New(start, start+length)
		}
		rel.Append(vals...)
	}
	return rel, nil
}
