package workload

import (
	"testing"

	"intervaljoin/internal/relation"
)

func TestValidate(t *testing.T) {
	base := Spec{Name: "R", NumIntervals: 10, TMin: 0, TMax: 100, IMin: 1, IMax: 10}
	if err := base.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Spec{
		{Name: "R", NumIntervals: -1, TMin: 0, TMax: 100, IMin: 1, IMax: 10},
		{Name: "R", NumIntervals: 1, TMin: 100, TMax: 100, IMin: 1, IMax: 10},
		{Name: "R", NumIntervals: 1, TMin: 0, TMax: 100, IMin: 5, IMax: 4},
		{Name: "R", NumIntervals: 1, TMin: 0, TMax: 100, IMin: 200, IMax: 300},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d validated", i)
		}
	}
}

func TestGenerateRespectsBounds(t *testing.T) {
	for _, ds := range []Distribution{Uniform, Normal, Zipf, Exponential} {
		for _, di := range []Distribution{Uniform, Normal, Zipf, Exponential} {
			s := Spec{
				Name: "R", NumIntervals: 2000,
				StartDist: ds, LengthDist: di,
				TMin: 50, TMax: 5000, IMin: 2, IMax: 120, Seed: 1,
			}
			r := MustGenerate(s)
			if r.Len() != 2000 {
				t.Fatalf("%v/%v: %d intervals", ds, di, r.Len())
			}
			for _, iv := range r.Intervals() {
				if iv.Start < s.TMin || iv.End > s.TMax {
					t.Fatalf("%v/%v: %v outside [%d,%d]", ds, di, iv, s.TMin, s.TMax)
				}
				if iv.Length() < s.IMin || iv.Length() > s.IMax {
					t.Fatalf("%v/%v: length %d outside [%d,%d]", ds, di, iv.Length(), s.IMin, s.IMax)
				}
			}
			if err := r.Validate(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	s := Table1Spec("R1", 500, 7)
	a := MustGenerate(s)
	b := MustGenerate(s)
	for i := range a.Tuples {
		if a.Tuples[i].Attrs[0] != b.Tuples[i].Attrs[0] {
			t.Fatal("same seed produced different data")
		}
	}
	s2 := s
	s2.Seed = 8
	c := MustGenerate(s2)
	same := true
	for i := range a.Tuples {
		if a.Tuples[i].Attrs[0] != c.Tuples[i].Attrs[0] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestUniformIsRoughlyUniform(t *testing.T) {
	s := Spec{Name: "R", NumIntervals: 20000, StartDist: Uniform, LengthDist: Uniform,
		TMin: 0, TMax: 1000, IMin: 0, IMax: 0, Seed: 3}
	r := MustGenerate(s)
	var sum float64
	for _, iv := range r.Intervals() {
		sum += float64(iv.Start)
	}
	mean := sum / float64(r.Len())
	if mean < 450 || mean > 550 {
		t.Fatalf("uniform start mean = %.1f, want ~500", mean)
	}
}

func TestZipfSkewsLow(t *testing.T) {
	s := Spec{Name: "R", NumIntervals: 20000, StartDist: Zipf, LengthDist: Uniform,
		TMin: 0, TMax: 1000, IMin: 0, IMax: 0, Seed: 4}
	r := MustGenerate(s)
	low := 0
	for _, iv := range r.Intervals() {
		if iv.Start < 100 {
			low++
		}
	}
	if frac := float64(low) / float64(r.Len()); frac < 0.5 {
		t.Fatalf("zipf low-decile fraction = %.2f, want > 0.5", frac)
	}
}

func TestNormalCentres(t *testing.T) {
	s := Spec{Name: "R", NumIntervals: 20000, StartDist: Normal, LengthDist: Uniform,
		TMin: 0, TMax: 1000, IMin: 0, IMax: 0, Seed: 5}
	r := MustGenerate(s)
	central := 0
	for _, iv := range r.Intervals() {
		if iv.Start >= 300 && iv.Start <= 700 {
			central++
		}
	}
	// ±1.2σ of a gaussian holds ~77% of the mass; uniform would hold 40%.
	if frac := float64(central) / float64(r.Len()); frac < 0.7 {
		t.Fatalf("normal central fraction = %.2f, want > 0.7 (±1.2σ)", frac)
	}
}

func TestPaperSpecs(t *testing.T) {
	t1 := Table1Spec("R1", 100, 1)
	if t1.TMax != 100_000 || t1.IMax != 100 {
		t.Fatalf("Table1Spec = %+v", t1)
	}
	f5 := Figure5Spec("R1", 100, 1)
	if f5.TMax != 1000 || f5.IMax != 100 {
		t.Fatalf("Figure5Spec = %+v", f5)
	}
	t3 := Table3Spec("R3", 100, 400, 1)
	if t3.TMax != 200_000 || t3.IMax != 400 {
		t.Fatalf("Table3Spec = %+v", t3)
	}
}

func TestGenerateMulti(t *testing.T) {
	specs := Table4Specs(200, 20, 200, 100, 9)
	var rels []*relation.Relation
	for _, s := range specs {
		r, err := GenerateMulti(s)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Validate(); err != nil {
			t.Fatal(err)
		}
		rels = append(rels, r)
	}
	if rels[0].Schema.Arity() != 2 || rels[2].Schema.Arity() != 3 {
		t.Fatalf("arities = %d, %d", rels[0].Schema.Arity(), rels[2].Schema.Arity())
	}
	// Real-valued attributes are points.
	ai := rels[0].Schema.AttrIndex("A")
	for _, tu := range rels[0].Tuples {
		if !tu.Attrs[ai].IsPoint() {
			t.Fatalf("attribute A not a point: %v", tu.Attrs[ai])
		}
	}
	// Interval attribute respects its bounds.
	ii := rels[0].Schema.AttrIndex("I")
	for _, tu := range rels[0].Tuples {
		iv := tu.Attrs[ii]
		if iv.Start < 0 || iv.End > 100_000 || iv.Length() < 1 || iv.Length() > 1000 {
			t.Fatalf("attribute I out of spec: %v", iv)
		}
	}
}

func TestGenerateMultiErrors(t *testing.T) {
	if _, err := GenerateMulti(MultiSpec{Name: "R"}); err == nil {
		t.Error("empty attr order accepted")
	}
	if _, err := GenerateMulti(MultiSpec{
		Name: "R", NumTuples: 1, AttrOrder: []string{"X"},
		Attrs: map[string]AttrSpec{},
	}); err == nil {
		t.Error("missing attribute spec accepted")
	}
}

func TestParseDistribution(t *testing.T) {
	for _, d := range []Distribution{Uniform, Normal, Zipf, Exponential} {
		got, err := ParseDistribution(d.String())
		if err != nil || got != d {
			t.Errorf("ParseDistribution(%q) = %v, %v", d.String(), got, err)
		}
	}
	if _, err := ParseDistribution("pareto"); err == nil {
		t.Error("unknown distribution accepted")
	}
}
