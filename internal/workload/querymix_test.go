package workload

import "testing"

func TestZipfQueryMixDeterministicAndBounded(t *testing.T) {
	spec := QueryMixSpec{N: 200, TMin: 0, TMax: 100_000, Seed: 42}
	a, err := ZipfQueryMix(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ZipfQueryMix(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 200 {
		t.Fatalf("len = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("mix not deterministic at %d: %v vs %v", i, a[i], b[i])
		}
		if a[i].Lo < 0 || a[i].Hi > 100_000 || a[i].Hi < a[i].Lo {
			t.Fatalf("window %d out of bounds: %v", i, a[i])
		}
	}
}

func TestZipfQueryMixSkewConcentrates(t *testing.T) {
	// Count queries per hotspot stride; high skew must concentrate far more
	// mass on the top stride than low skew.
	share := func(skew float64) float64 {
		ws, err := ZipfQueryMix(QueryMixSpec{N: 2000, TMin: 0, TMax: 100_000, Skew: skew, Hotspots: 16,
			SpanMin: 2000, SpanMax: 2500, Jitter: 500, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		counts := make(map[int64]int)
		for _, w := range ws {
			counts[(w.Lo+w.Hi)/2/(100_000/16)]++
		}
		top := 0
		for _, c := range counts {
			if c > top {
				top = c
			}
		}
		return float64(top) / float64(len(ws))
	}
	lo, hi := share(1.1), share(3.0)
	if hi <= lo {
		t.Fatalf("skew 3.0 top-stride share %.3f not above skew 1.1 share %.3f", hi, lo)
	}
	if hi < 0.5 {
		t.Fatalf("skew 3.0 should concentrate >50%% on the top stride, got %.3f", hi)
	}
}

func TestZipfQueryMixValidation(t *testing.T) {
	if _, err := ZipfQueryMix(QueryMixSpec{N: 1, TMin: 10, TMax: 10}); err == nil {
		t.Fatal("empty range accepted")
	}
	if _, err := ZipfQueryMix(QueryMixSpec{N: 1, TMin: 0, TMax: 10, Skew: 0.5}); err == nil {
		t.Fatal("exponent <= 1 accepted")
	}
}
