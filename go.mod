module intervaljoin

go 1.22
