// Package intervaljoin is a Go implementation of "Processing Interval Joins
// On Map-Reduce" (EDBT 2014): multi-way joins over interval data with
// predicates from Allen's interval algebra, executed on a built-in
// MapReduce engine.
//
// The package classifies a join query into the paper's four classes and
// runs the matching algorithm:
//
//   - colocation queries (overlaps, contains, meets, starts, finishes,
//     equals, and inverses) → RCCIS, which replicates only the intervals
//     that belong to consistent interval-sets crossing a partition boundary;
//   - sequence queries (before/after) → All-Matrix, which spreads the
//     cross-product-like workload over a multi-dimensional grid of
//     consistent reducers;
//   - hybrid queries → All-Seq-Matrix (or its pruned variant PASM);
//   - general multi-attribute queries → Gen-Matrix.
//
// Quick start:
//
//	eng := intervaljoin.NewEngine(intervaljoin.EngineOptions{})
//	q, _ := intervaljoin.ParseQuery("R1 overlaps R2 and R2 overlaps R3")
//	res, _ := eng.Run(q, []*intervaljoin.Relation{r1, r2, r3}, intervaljoin.RunOptions{})
//	for _, t := range res.Tuples { ... }
//
// The naive baselines the paper compares against (2-way Cascade,
// All-Replicate, FCTS) are available through RunWith for benchmarking.
package intervaljoin

import (
	"fmt"
	"io"
	"sort"

	"intervaljoin/internal/core"
	"intervaljoin/internal/cost"
	"intervaljoin/internal/dfs"
	"intervaljoin/internal/interval"
	"intervaljoin/internal/mr"
	"intervaljoin/internal/obs"
	"intervaljoin/internal/query"
	"intervaljoin/internal/relation"
	"intervaljoin/internal/stats"
)

// Interval is a closed interval [Start, End] over int64 time points.
type Interval = interval.Interval

// Point is a position on the time line.
type Point = interval.Point

// NewInterval returns the interval [start, end]; it panics if end < start.
func NewInterval(start, end Point) Interval { return interval.New(start, end) }

// PointValue returns the degenerate interval modelling the real value p.
func PointValue(p Point) Interval { return interval.PointInterval(p) }

// Predicate is one of the thirteen Allen relations.
type Predicate = interval.Predicate

// The thirteen Allen relations.
const (
	Before       = interval.Before
	After        = interval.After
	Meets        = interval.Meets
	MetBy        = interval.MetBy
	Overlaps     = interval.Overlaps
	OverlappedBy = interval.OverlappedBy
	Contains     = interval.Contains
	ContainedBy  = interval.ContainedBy
	Starts       = interval.Starts
	StartedBy    = interval.StartedBy
	Finishes     = interval.Finishes
	FinishedBy   = interval.FinishedBy
	Equals       = interval.Equals
)

// Relation is a named collection of tuples of interval attributes.
type Relation = relation.Relation

// Schema describes a relation's name and attribute columns.
type Schema = relation.Schema

// Tuple is one row of a relation.
type Tuple = relation.Tuple

// NewSchema builds a schema; with no attributes a single attribute "I" is
// assumed.
func NewSchema(name string, attrs ...string) Schema { return relation.NewSchema(name, attrs...) }

// NewRelation builds an empty relation with the given schema.
func NewRelation(schema Schema) *Relation { return relation.New(schema) }

// FromIntervals builds a single-attribute relation from intervals, with
// tuple ids 0..n-1.
func FromIntervals(name string, ivs []Interval) *Relation {
	return relation.FromIntervals(name, ivs)
}

// Query is a conjunctive multi-way interval join query.
type Query = query.Query

// ParseQuery parses the query language, e.g.
// "R1 overlaps R2 and R2 contains R3" or "R1.I before R2.I and R1.A = R2.A".
func ParseQuery(s string) (*Query, error) { return query.Parse(s) }

// Result is a join run's output tuples plus the paper's cost metrics
// (intermediate pairs, replicated intervals, per-reducer load, cycles).
type Result = core.Result

// OutputTuple holds one output row's tuple id per relation, in query
// relation order.
type OutputTuple = core.OutputTuple

// Algorithm is a runnable join algorithm.
type Algorithm = core.Algorithm

// RunOptions tune a run; see core.Options. The zero value uses 16
// partitions and 6 partitions per grid dimension, the paper's defaults.
type RunOptions = core.Options

// Tracer is the engine's observability collector (see internal/obs): a
// non-nil tracer attached via EngineOptions records structured spans,
// counters and histograms for every run. A nil *Tracer is valid and
// disabled — the engine then pays only a nil check per instrumentation
// point.
type Tracer = obs.Tracer

// TracerOptions configure a Tracer.
type TracerOptions = obs.Options

// NewTracer returns an enabled tracer; attach it through
// EngineOptions.Tracer and export what it saw with Engine.WriteTrace /
// Engine.WriteMetrics after the run.
func NewTracer(opts TracerOptions) *Tracer { return obs.New(opts) }

// EngineOptions configure the engine.
type EngineOptions struct {
	// Workers bounds map/reduce task parallelism; 0 means GOMAXPROCS.
	Workers int
	// DataDir, when non-empty, stores relations and intermediates on disk
	// under this directory instead of in memory.
	DataDir string
	// Tracer, when non-nil, records execution spans and statistics for
	// every run on this engine (see docs/OBSERVABILITY.md). Nil disables
	// tracing at near-zero cost.
	Tracer *Tracer
	// ResplitPairThreshold, when positive, lets the engine re-split a
	// reduce task whose value list reaches this size across spare workers
	// mid-job (for algorithms that provide a decomposition; see
	// docs/ALGORITHMS.md "Skew-aware execution"). 0 disables re-splitting.
	ResplitPairThreshold int
}

// Engine runs queries on the built-in MapReduce engine.
type Engine struct {
	mr     *mr.Engine
	tracer *Tracer
}

// NewEngine builds an engine.
func NewEngine(opts EngineOptions) (*Engine, error) {
	var store dfs.Store
	if opts.DataDir != "" {
		d, err := dfs.NewDisk(opts.DataDir)
		if err != nil {
			return nil, err
		}
		store = d
	} else {
		store = dfs.NewMem()
	}
	return &Engine{
		mr: mr.NewEngine(mr.Config{
			Store:                store,
			Workers:              opts.Workers,
			Tracer:               opts.Tracer,
			ResplitPairThreshold: opts.ResplitPairThreshold,
		}),
		tracer: opts.Tracer,
	}, nil
}

// Tracer returns the tracer attached at construction, or nil.
func (e *Engine) Tracer() *Tracer { return e.tracer }

// WriteTrace writes everything the engine's tracer has recorded as a
// Chrome trace_event JSON document — loadable in Perfetto or
// chrome://tracing. Without a tracer it writes an empty, valid trace.
func (e *Engine) WriteTrace(w io.Writer) error {
	return mr.WriteChromeTrace(w, e.tracer)
}

// WriteMetrics writes the machine-readable metrics.json report for a run:
// the tracer's per-phase wall breakdown, counters and histograms (when a
// tracer is attached) joined with the result's serialized-model metrics
// and reducer-skew table. benchsummary -compare consumes this format.
func (e *Engine) WriteMetrics(w io.Writer, res *Result) error {
	name := "run"
	var m *mr.Metrics
	if res != nil {
		name = res.Algorithm
		m = res.Metrics
	}
	return mr.WriteMetricsJSON(w, name, e.tracer, m)
}

// MustNewEngine is NewEngine for examples and tests; it panics on error.
func MustNewEngine(opts EngineOptions) *Engine {
	e, err := NewEngine(opts)
	if err != nil {
		panic(err)
	}
	return e
}

// Run executes the query with the paper's recommended algorithm for its
// class. Relations are matched to the query by name, in any order. Queries
// that Allen-algebra reasoning proves empty return an empty result without
// touching the data.
func (e *Engine) Run(q *Query, rels []*Relation, opts RunOptions) (*Result, error) {
	if query.ProvablyEmpty(q) {
		// Still validate the bindings so misuse surfaces identically.
		if _, err := core.NewContext(e.mr, q, rels, opts); err != nil {
			return nil, err
		}
		return &Result{Algorithm: "provably-empty", Metrics: mr.NewMetrics("provably-empty")}, nil
	}
	return e.RunWith(core.Plan(q, false), q, rels, opts)
}

// RunWith executes the query with an explicit algorithm (see AlgorithmByName
// and Algorithms).
func (e *Engine) RunWith(alg Algorithm, q *Query, rels []*Relation, opts RunOptions) (*Result, error) {
	ctx, err := core.NewContext(e.mr, q, rels, opts)
	if err != nil {
		return nil, err
	}
	return alg.Run(ctx)
}

// Oracle computes the query with the in-memory reference nested-loop join —
// handy for verifying a distributed run on small data.
func (e *Engine) Oracle(q *Query, rels []*Relation, opts RunOptions) (*Result, error) {
	return e.RunWith(core.Reference{}, q, rels, opts)
}

// algorithmRegistry maps names to constructors.
var algorithmRegistry = map[string]func() Algorithm{
	"two-way":             func() Algorithm { return core.TwoWay{} },
	"rccis":               func() Algorithm { return core.RCCIS{} },
	"all-matrix":          func() Algorithm { return core.AllMatrix{} },
	"all-seq-matrix":      func() Algorithm { return core.SeqMatrix{} },
	"pasm":                func() Algorithm { return core.PASM{} },
	"gen-matrix":          func() Algorithm { return core.GenMatrix{} },
	"fcts":                func() Algorithm { return core.FCTS{} },
	"fstc":                func() Algorithm { return core.FSTC{} },
	"all-rep":             func() Algorithm { return core.AllRep{} },
	"2way-cascade":        func() Algorithm { return core.Cascade{} },
	"2way-cascade-matrix": func() Algorithm { return core.Cascade{MatrixSteps: true} },
	"reference":           func() Algorithm { return core.Reference{} },
}

// AlgorithmByName returns the named algorithm. AlgorithmNames lists the
// valid names.
func AlgorithmByName(name string) (Algorithm, error) {
	mk, ok := algorithmRegistry[name]
	if !ok {
		return nil, fmt.Errorf("intervaljoin: unknown algorithm %q (valid: %v)", name, AlgorithmNames())
	}
	return mk(), nil
}

// AlgorithmNames lists the registered algorithm names, sorted.
func AlgorithmNames() []string {
	names := make([]string, 0, len(algorithmRegistry))
	for n := range algorithmRegistry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Plan returns the paper's recommended algorithm for the query's class.
func Plan(q *Query) Algorithm { return core.Plan(q, false) }

// ProvablyEmpty reports whether Allen-algebra path-consistency reasoning
// proves the query's output empty for every possible input (including
// real-valued point attributes) — a driver can then skip the join entirely.
// A false result does not guarantee a non-empty output.
func ProvablyEmpty(q *Query) bool { return query.ProvablyEmpty(q) }

// ProvablyEmptyProper is ProvablyEmpty under the extra assumption that
// every data interval has non-zero length; it proves strictly more queries
// empty.
func ProvablyEmptyProper(q *Query) bool { return query.ProvablyEmptyProper(q) }

// LoadRelation reads a relation from the text interchange format shared by
// the CLI tools: one tuple per line, "start,end" attributes separated by
// '|', '#' comments and blank lines ignored.
func LoadRelation(schema Schema, path string) (*Relation, error) {
	return relation.LoadFile(schema, path)
}

// SaveRelation writes a relation in the format LoadRelation reads.
func SaveRelation(rel *Relation, path string) error { return relation.SaveFile(rel, path) }

// LoadSummary describes a per-reducer load distribution: min, max, mean,
// coefficient of variation, straggler factor (max/mean) and Gini
// coefficient.
type LoadSummary = stats.Summary

// SummarizeLoad computes the summary of a reducer load vector (see
// Result.Metrics.ReducerLoadVector) — the Figure 4 statistics.
func SummarizeLoad(loads []int64) LoadSummary { return stats.Summarize(loads) }

// CostEstimate is one algorithm's predicted communication cost (see the
// cost model in internal/cost).
type CostEstimate = cost.Estimate

// Advise ranks the applicable algorithms for a single-attribute query by
// estimated straggler load, from per-relation statistics — the Zhang-style
// cost model the paper lists as future work. partitions is the 1-D reducer
// count, perDim the grid partitions per dimension.
func Advise(q *Query, rels []*Relation, partitions, perDim int) ([]CostEstimate, error) {
	return cost.Advise(q, rels, partitions, perDim)
}

// AdvisePartitions picks a 1-D partition count for the given relations by
// minimising the cost model's predicted intermediate pairs over the
// candidate counts (default candidates 4..64 in powers of two when nil) —
// the "-partitions auto" mode of cmd/ijoin. Pair it with
// RunOptions.AutoPartitions so the choice is recorded in metrics.json.
func AdvisePartitions(rels []*Relation, candidates []int) int {
	return cost.AdvisePartitions(rels, candidates)
}

// RecommendEquiDepth reports whether quantile partition boundaries
// (RunOptions.EquiDepth) are advisable at the given reducer count: true
// when the data's start-point histogram predicts a straggler factor above
// 2 under uniform-width partitions.
func RecommendEquiDepth(rels []*Relation, partitions int) bool {
	return cost.RecommendEquiDepth(rels, partitions, 0)
}
