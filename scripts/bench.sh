#!/usr/bin/env sh
# Benchmark baseline emitter: runs the join-kernel, codec and MR-engine
# microbenchmarks with fixed iteration counts (stable on small/shared
# machines, where time-based -benchtime makes run-to-run noise dominate),
# repeats each REPS times, and reduces to per-benchmark medians in a JSON
# baseline via cmd/benchsummary.
#
# Usage: scripts/bench.sh [output.json]     (default BENCH_1.json)
#        REPS=5 scripts/bench.sh            (more repetitions)
set -eu

cd "$(dirname "$0")/.."
OUT="${1:-BENCH_1.json}"
REPS="${REPS:-3}"

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

# Reduce-side join kernel: enumerator sweeps, semijoin marking, RCCIS
# crossing decisions. Heavy per-op cost, so 100 fixed iterations.
go test -run '^$' -bench 'Enumerator|SemijoinReduce|MarkCrossing' \
    -benchmem -benchtime 100x -count "$REPS" ./internal/core/ | tee -a "$tmp"

# Record codecs: sub-microsecond ops need many iterations for resolution.
go test -run '^$' -bench 'Encode' \
    -benchmem -benchtime 20000x -count "$REPS" ./internal/core/ | tee -a "$tmp"

# MR engine end-to-end: parallel feed, sharded shuffle, spilling, and the
# 3-cycle chain pair (sequential RunChain vs pipelined boundaries).
go test -run '^$' -bench 'Engine' \
    -benchmem -benchtime 20x -count "$REPS" ./internal/mr/ | tee -a "$tmp"

# Whole multi-cycle algorithm chains (RCCIS, PASM), sequential vs
# pipelined. Each iteration runs 2-3 full MR cycles, so few iterations.
go test -run '^$' -bench '^BenchmarkChain' \
    -benchmem -benchtime 5x -count "$REPS" ./internal/core/ | tee -a "$tmp"

# Shuffle volume: logical vs physical bytes of the range-coalesced shuffle
# on the replication-heavy baselines (reported via logicalB/op + physB/op;
# benchsummary -compare renders them as the shuffle-volume table).
go test -run '^$' -bench '^BenchmarkShuffle' \
    -benchmem -benchtime 5x -count "$REPS" ./internal/core/ | tee -a "$tmp"

go run ./cmd/benchsummary -o "$OUT" < "$tmp"
echo "wrote $OUT"

# When regenerating a later baseline, show the regression table against the
# earliest checked-in one.
if [ "$OUT" != "BENCH_1.json" ] && [ -f "BENCH_1.json" ]; then
    go run ./cmd/benchsummary -compare BENCH_1.json "$OUT"
fi
