#!/usr/bin/env sh
# Benchmark baseline emitter: runs the join-kernel, codec and MR-engine
# microbenchmarks with fixed iteration counts (stable on small/shared
# machines, where time-based -benchtime makes run-to-run noise dominate),
# repeats each REPS times, and reduces to per-benchmark medians in a JSON
# baseline via cmd/benchsummary.
#
# Usage: scripts/bench.sh [output.json]     (default BENCH_1.json)
#        REPS=5 scripts/bench.sh            (more repetitions)
set -eu

cd "$(dirname "$0")/.."
OUT="${1:-BENCH_1.json}"
REPS="${REPS:-3}"

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

# Reduce-side join kernel: enumerator sweeps, semijoin marking, RCCIS
# crossing decisions. Heavy per-op cost, so 100 fixed iterations.
go test -run '^$' -bench 'Enumerator|SemijoinReduce|MarkCrossing' \
    -benchmem -benchtime 100x -count "$REPS" ./internal/core/ | tee -a "$tmp"

# Columnar reduce kernel: one whole reduce task (tagged decode, arena
# seal, specialized sweep) at 2^4 / 2^8 / 2^12 candidates per relation.
# Reports pairs/op plus the per-kernel-family dispatch counts (sweep/op,
# merge/op, generic/op) that benchsummary -compare renders as the
# kernel-dispatch table.
go test -run '^$' -bench 'ReduceKernel' \
    -benchmem -benchtime 50x -count "$REPS" ./internal/core/ | tee -a "$tmp"

# Record codecs: sub-microsecond ops need many iterations for resolution.
go test -run '^$' -bench 'Encode' \
    -benchmem -benchtime 20000x -count "$REPS" ./internal/core/ | tee -a "$tmp"

# MR engine end-to-end: parallel feed, sharded shuffle, spilling, and the
# 3-cycle chain pair (sequential RunChain vs pipelined boundaries).
go test -run '^$' -bench 'Engine' \
    -benchmem -benchtime 20x -count "$REPS" ./internal/mr/ | tee -a "$tmp"

# Whole multi-cycle algorithm chains (RCCIS, PASM), sequential vs
# pipelined. Each iteration runs 2-3 full MR cycles, so few iterations.
go test -run '^$' -bench '^BenchmarkChain' \
    -benchmem -benchtime 5x -count "$REPS" ./internal/core/ | tee -a "$tmp"

# Shuffle volume: logical vs physical bytes of the range-coalesced shuffle
# on the replication-heavy baselines (reported via logicalB/op + physB/op;
# benchsummary -compare renders them as the shuffle-volume table).
go test -run '^$' -bench '^BenchmarkShuffle' \
    -benchmem -benchtime 5x -count "$REPS" ./internal/core/ | tee -a "$tmp"

# Reduce-skew scenarios: uniform vs skew-aware execution on heavy-tail
# inputs (Zipf starts and MAWI packet-train replay). Besides ns/op they
# report the deterministic per-reducer pair imbalance and the measured
# wall imbalance (docs/ALGORITHMS.md "Skew-aware execution").
go test -run '^$' -bench 'ReduceSkew' \
    -benchmem -benchtime 3x -count "$REPS" . | tee -a "$tmp"

go run ./cmd/benchsummary -o "$OUT" < "$tmp"
echo "wrote $OUT"

# Observability artifacts: a representative pipelined chain run (RCCIS,
# mark + join, 2 MR cycles) traced end to end. artifacts/trace.json opens
# in Perfetto and shows cycle 1's reduce overlapping cycle 2's map;
# artifacts/metrics.json is the machine-readable per-phase report that
# `benchsummary -phases` renders. CI uploads both next to the baseline.
mkdir -p artifacts
benchdata="$(mktemp -d)"
trap 'rm -f "$tmp"; rm -rf "$benchdata"' EXIT
go run ./cmd/genintervals -n 20000 -tmax 200000 -imax 120 -o "$benchdata/r1.txt"
go run ./cmd/genintervals -n 20000 -tmax 200000 -imax 120 -seed 2 -o "$benchdata/r2.txt"
go run ./cmd/genintervals -n 20000 -tmax 200000 -imax 120 -seed 3 -o "$benchdata/r3.txt"
# -workers 4 pins the lane count so the timeline looks the same on a
# single-core runner as on a developer laptop.
go run ./cmd/ijoin -query "R1 overlaps R2 and R2 overlaps R3" \
    -rel R1="$benchdata/r1.txt" -rel R2="$benchdata/r2.txt" -rel R3="$benchdata/r3.txt" \
    -algorithm rccis -workers 4 -o /dev/null \
    -trace artifacts/trace.json -metrics artifacts/metrics.json
go run ./cmd/benchsummary -phases artifacts/metrics.json
echo "wrote artifacts/trace.json artifacts/metrics.json"

# Skew artifact: the Zipf heavy-tail scenario under the skew-aware
# executor (adaptive boundaries, virtual splitting deep enough to meet
# the pair-imbalance ceiling check.sh gates via benchsummary -skewgate).
go run ./cmd/genintervals -n 4000 -ds zipf -o "$benchdata/z1.txt"
go run ./cmd/genintervals -n 4000 -ds zipf -seed 2 -o "$benchdata/z2.txt"
go run ./cmd/ijoin -query "R1 overlaps R2" \
    -rel R1="$benchdata/z1.txt" -rel R2="$benchdata/z2.txt" \
    -adaptive -max-virtual 32 -workers 4 -o /dev/null \
    -metrics artifacts/skew-metrics.json
go run ./cmd/benchsummary -skew artifacts/skew-metrics.json
echo "wrote artifacts/skew-metrics.json"

# Cache artifact: the ijoind zipfian query-mix benchmark — cold run vs
# semantic-cache-served run per window, byte-identical results enforced
# inside the benchmark. artifacts/cache-metrics.json carries the cache
# section (hit ratio, warm/cold means, speedup) that benchsummary -cache
# renders and check.sh gates via -cachegate.
go run ./cmd/ijoind -bench -queries 120 -rows 12000 -workers 4 \
    -metrics artifacts/cache-metrics.json
go run ./cmd/benchsummary -cache artifacts/cache-metrics.json
echo "wrote artifacts/cache-metrics.json"

# Phase baseline: BENCH-PHASES.json freezes the traced run's per-phase
# walls (the dash keeps it out of check.sh's BENCH_<n>.json discovery).
# check.sh gates the reduce phase against it via benchsummary -phasegate;
# seed it on first run, refresh it deliberately by deleting it first.
if [ ! -f BENCH-PHASES.json ]; then
    cp artifacts/metrics.json BENCH-PHASES.json
    echo "seeded BENCH-PHASES.json"
fi

# Skew baseline: BENCH-SKEW.json freezes the skew artifact's reducer
# balance; check.sh prints deltas against it and gates the pair imbalance
# with an absolute ceiling (benchsummary -skewgate).
if [ ! -f BENCH-SKEW.json ]; then
    cp artifacts/skew-metrics.json BENCH-SKEW.json
    echo "seeded BENCH-SKEW.json"
fi

# Cache baseline: BENCH-CACHE.json freezes the query-mix cache run;
# check.sh prints deltas against it and gates the span hit ratio with an
# absolute floor (benchsummary -cachegate).
if [ ! -f BENCH-CACHE.json ]; then
    cp artifacts/cache-metrics.json BENCH-CACHE.json
    echo "seeded BENCH-CACHE.json"
fi

# When regenerating a later baseline, show the regression table against the
# earliest checked-in one.
if [ "$OUT" != "BENCH_1.json" ] && [ -f "BENCH_1.json" ]; then
    go run ./cmd/benchsummary -compare BENCH_1.json "$OUT"
fi
