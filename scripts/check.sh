#!/usr/bin/env sh
# Tier-1 gate: everything that must be green before a change lands.
#
#   1. go vet        — static checks
#   2. go build      — the whole module compiles
#   3. go test -race — full suite (unit, integration, property, oracle
#                      cross-validation) under the race detector; the MR
#                      engine is deliberately concurrent, so -race is part
#                      of the gate, not an optional extra
#   4. bench emitter — regenerates the benchmark baseline so perf-sensitive
#                      changes ship with fresh numbers (scripts/bench.sh)
#
# Usage: scripts/check.sh            (full gate)
#        SKIP_BENCH=1 scripts/check.sh   (skip the baseline regeneration)
set -eu

cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

if [ "${SKIP_BENCH:-0}" != "1" ]; then
    echo "== benchmark baseline =="
    # BENCH_1.json is the frozen pre-pipelining reference and BENCH_2.json
    # the pre-range-shuffle one; current numbers go to BENCH_3.json and
    # bench.sh prints the regression table. BENCH_THRESHOLD (percent) gates
    # the comparison against the previous baseline: any ns/op regression
    # beyond it fails the check, which is how CI keeps perf honest without
    # tripping on shared-machine noise.
    sh scripts/bench.sh BENCH_3.json
    if [ -f BENCH_2.json ]; then
        go run ./cmd/benchsummary -compare -threshold "${BENCH_THRESHOLD:-50}" -fail \
            BENCH_2.json BENCH_3.json
    fi
fi

echo "check.sh: all green"
