#!/usr/bin/env sh
# Tier-1 gate: everything that must be green before a change lands.
#
#   1. go vet        — static checks
#   2. ijlint        — the engine's domain-specific analyzers (docs/LINTS.md):
#                      exhaustive Allen switches, emitter escapes, sync.Pool
#                      hygiene, shard-lock discipline, hot-path ban list
#   3. go build      — the whole module compiles
#   4. obs smoke     — disabled-tracer and disabled-telemetry zero-cost
#                      contracts (nil tracer/registry = nil check + zero
#                      allocs; docs/OBSERVABILITY.md)
#   5. go test -race — full suite (unit, integration, property, oracle
#                      cross-validation) under the race detector; the MR
#                      engine is deliberately concurrent, so -race is part
#                      of the gate, not an optional extra
#   6. live scrape   — ijoind -selfcheck boots the real server, drives the
#                      query mix over HTTP, strictly validates the /metrics
#                      exposition text, and archives the scrape plus a
#                      sampled query trace (docs/OBSERVABILITY.md)
#   7. bench emitter — regenerates the benchmark baseline so perf-sensitive
#                      changes ship with fresh numbers, plus the traced
#                      chain-run artifacts (scripts/bench.sh)
#
# Usage: scripts/check.sh            (full gate)
#        SKIP_BENCH=1 scripts/check.sh   (skip the baseline regeneration)
set -eu

cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== ijlint =="
# -time prints the per-analyzer wall breakdown to stderr: the informal
# budget is <10s for any single analyzer (TestModuleIsClean enforces the
# same bound in-process). The findings JSON is kept as a CI artifact and
# re-rendered as PR annotations by `ijlint -annotate-from`.
mkdir -p artifacts
go run ./cmd/ijlint -time -json artifacts/lint.json ./...

echo "== go build =="
go build ./...

echo "== disabled-tracer overhead smoke =="
# The obs layer's contract is that a nil tracer costs a nil check and
# zero allocations on every instrumentation point (docs/OBSERVABILITY.md);
# TestDisabledTracerZeroCost pins that with testing.AllocsPerRun, and
# TestLiveDisabledZeroCost pins the same contract for the live metrics
# registry. Run them by name so a contract break fails fast with an
# unambiguous message before the full -race suite.
go test -run 'TestDisabledTracer' ./internal/obs/
go test -run 'TestLiveDisabledZeroCost' ./internal/obs/live/

echo "== go test -race =="
go test -race ./...

echo "== live /metrics scrape =="
# Boot the real ijoind on a loopback port, fire the query mix at it over
# HTTP, and strictly validate the /metrics exposition (duplicate series,
# bad names, broken histogram invariants all fail). The validated scrape
# and a sampled per-query Chrome trace land in artifacts/ for CI to
# archive; -serve-stats renders the scrape as the service health table.
go run ./cmd/ijoind -selfcheck -rows 2000 -queries 8 -log-level warn \
    -scrape-out artifacts/live-metrics.prom \
    -trace-dir artifacts/query-traces -trace-sample 3 -trace-keep 4
go run ./cmd/benchsummary -serve-stats artifacts/live-metrics.prom

if [ "${SKIP_BENCH:-0}" != "1" ]; then
    echo "== benchmark baseline =="
    # Baselines are numbered BENCH_<n>.json: the frozen ones document each
    # perf-relevant PR and the newest holds current numbers. The two newest
    # are discovered here instead of being hardcoded, so freezing a new
    # baseline (adding BENCH_<n+1>.json) needs no edit to this script.
    # BENCH_THRESHOLD (percent) gates the comparison against the previous
    # baseline: any ns/op regression beyond it fails the check, which is how
    # CI keeps perf honest without tripping on shared-machine noise.
    newest=""
    prev=""
    for f in $(ls BENCH_*.json 2>/dev/null | sort -t_ -k2 -n); do
        prev="$newest"
        newest="$f"
    done
    [ -n "$newest" ] || newest=BENCH_1.json
    sh scripts/bench.sh "$newest"
    if [ -n "$prev" ]; then
        go run ./cmd/benchsummary -compare -threshold "${BENCH_THRESHOLD:-50}" -fail \
            "$prev" "$newest"
    fi
    # Reduce-phase wall gate: the traced chain run's reduce wall must stay
    # within BENCH_THRESHOLD of the frozen BENCH-PHASES.json baseline —
    # the whole-phase guard for the columnar reduce kernel.
    if [ -f BENCH-PHASES.json ] && [ -f artifacts/metrics.json ]; then
        go run ./cmd/benchsummary -threshold "${BENCH_THRESHOLD:-50}" -fail \
            -phases BENCH-PHASES.json,artifacts/metrics.json -phasegate reduce
    fi
    # Reducer-balance gate: the skew-aware executor must keep the Zipf
    # heavy-tail scenario's per-reducer pair imbalance (max/mean) under
    # the absolute SKEW_THRESHOLD ceiling — the deterministic stand-in
    # for the "max reducer wall within ~1.5x of mean" target, which the
    # wall columns of the table track informationally.
    if [ -f BENCH-SKEW.json ] && [ -f artifacts/skew-metrics.json ]; then
        go run ./cmd/benchsummary -fail \
            -skew BENCH-SKEW.json,artifacts/skew-metrics.json \
            -skewgate "${SKEW_THRESHOLD:-1.5}"
    fi
    # Semantic-cache gate: the ijoind zipfian query-mix run must keep its
    # span hit ratio at or above the absolute CACHE_THRESHOLD floor — the
    # deterministic stand-in for the "warm >= 5x cold" latency target,
    # which the warm/cold rows of the table track informationally.
    if [ -f BENCH-CACHE.json ] && [ -f artifacts/cache-metrics.json ]; then
        go run ./cmd/benchsummary -fail \
            -cache BENCH-CACHE.json,artifacts/cache-metrics.json \
            -cachegate "${CACHE_THRESHOLD:-0.8}"
    fi
fi

echo "check.sh: all green"
