#!/usr/bin/env sh
# One-command reproduction: build, test, regenerate every paper table and
# figure, and run the benchmark counterparts. Results land in ./artifacts.
set -eu

cd "$(dirname "$0")/.."
mkdir -p artifacts

echo "== build =="
go build ./...
go vet ./...

echo "== tests (unit, integration, property, oracle cross-validation) =="
go test ./... 2>&1 | tee artifacts/test_output.txt

echo "== paper tables and figures =="
go run ./cmd/experiments -exp all ${SCALE:+-scale "$SCALE"} 2>&1 | tee artifacts/experiments.txt
go run ./cmd/experiments -exp all ${SCALE:+-scale "$SCALE"} -json > artifacts/experiments.json

echo "== benchmarks =="
go test -bench=. -benchmem ./... 2>&1 | tee artifacts/bench_output.txt

echo "done — see artifacts/"
