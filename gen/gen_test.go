package gen_test

import (
	"testing"

	"intervaljoin/gen"
)

func TestPublicGenerate(t *testing.T) {
	r, err := gen.Generate(gen.Spec{
		Name: "R", NumIntervals: 100,
		StartDist: gen.Uniform, LengthDist: gen.Zipf,
		TMin: 0, TMax: 1000, IMin: 1, IMax: 50, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 100 {
		t.Fatalf("len = %d", r.Len())
	}
	if _, err := gen.ParseDistribution("normal"); err != nil {
		t.Fatal(err)
	}
	if gen.Table1Spec("R1", 10, 1).TMax != 100_000 {
		t.Fatal("paper helper wrong")
	}
}

func TestPublicGenerateMulti(t *testing.T) {
	specs := gen.Table4Specs(10, 5, 10, 8, 1)
	for _, s := range specs {
		r, err := gen.GenerateMulti(s)
		if err != nil {
			t.Fatal(err)
		}
		if r.Len() == 0 {
			t.Fatal("empty relation")
		}
	}
}
