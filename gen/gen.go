// Package gen exposes the synthetic interval workload generator — the
// paper's data-generation script (Section 6.2) — as public API. It is a
// thin facade over the internal implementation so that library users can
// produce the same workloads the experiments and benchmarks use.
package gen

import "intervaljoin/internal/workload"

// Distribution selects how starts or lengths are drawn: Uniform, Normal,
// Zipf or Exponential.
type Distribution = workload.Distribution

// The supported distributions.
const (
	Uniform     = workload.Uniform
	Normal      = workload.Normal
	Zipf        = workload.Zipf
	Exponential = workload.Exponential
)

// ParseDistribution maps a name ("uniform", "zipf", ...) to a Distribution.
func ParseDistribution(s string) (Distribution, error) { return workload.ParseDistribution(s) }

// Spec is one synthetic relation's recipe: the number of intervals nI, the
// start and length distributions dS and dI, the time range [TMin, TMax] and
// the length bounds [IMin, IMax], plus a determinism seed.
type Spec = workload.Spec

// MultiSpec generates a multi-attribute relation; AttrSpec is its
// per-attribute recipe.
type (
	MultiSpec = workload.MultiSpec
	AttrSpec  = workload.AttrSpec
)

// Generate builds the relation described by the spec, deterministically in
// its seed.
var Generate = workload.Generate

// GenerateMulti builds a multi-attribute relation.
var GenerateMulti = workload.GenerateMulti

// Paper-experiment parameter helpers.
var (
	// Table1Spec: dS,dI uniform, range [0,100K], lengths [1,100].
	Table1Spec = workload.Table1Spec
	// Figure5Spec: range [0,1000], lengths [1,100].
	Figure5Spec = workload.Figure5Spec
	// Table3Spec: range [0,200K], max length as a parameter.
	Table3Spec = workload.Table3Spec
	// Table4Specs: Q5's three multi-attribute relations.
	Table4Specs = workload.Table4Specs
)
