package intervaljoin_test

import (
	"fmt"

	"intervaljoin"
)

// The basic flow: parse a query, bind relations by name, run, read tuples.
func Example() {
	eng := intervaljoin.MustNewEngine(intervaljoin.EngineOptions{Workers: 2})
	q, _ := intervaljoin.ParseQuery("calls overlaps outages")

	calls := intervaljoin.FromIntervals("calls", []intervaljoin.Interval{
		intervaljoin.NewInterval(100, 130), // call 0
		intervaljoin.NewInterval(500, 520), // call 1
	})
	outages := intervaljoin.FromIntervals("outages", []intervaljoin.Interval{
		intervaljoin.NewInterval(120, 200), // outage 0 overlaps call 0
	})

	res, _ := eng.Run(q, []*intervaljoin.Relation{calls, outages}, intervaljoin.RunOptions{Partitions: 4})
	for _, t := range res.Tuples {
		fmt.Printf("call %d overlapped outage %d\n", t[0], t[1])
	}
	// Output: call 0 overlapped outage 0
}

// Multi-way colocation queries run on RCCIS; the result carries the paper's
// cost metrics.
func ExampleEngine_Run() {
	eng := intervaljoin.MustNewEngine(intervaljoin.EngineOptions{Workers: 2})
	q, _ := intervaljoin.ParseQuery("R1 overlaps R2 and R2 contains R3")

	r1 := intervaljoin.FromIntervals("R1", []intervaljoin.Interval{intervaljoin.NewInterval(0, 50)})
	r2 := intervaljoin.FromIntervals("R2", []intervaljoin.Interval{intervaljoin.NewInterval(10, 100)})
	r3 := intervaljoin.FromIntervals("R3", []intervaljoin.Interval{intervaljoin.NewInterval(20, 60)})

	res, _ := eng.Run(q, []*intervaljoin.Relation{r1, r2, r3}, intervaljoin.RunOptions{Partitions: 4})
	fmt.Println("tuples:", len(res.Tuples), "cycles:", res.Metrics.Cycles)
	// Output: tuples: 1 cycles: 2
}

// The planner classifies queries into the paper's four classes.
func ExamplePlan() {
	for _, qs := range []string{
		"A overlaps B and B overlaps C",
		"A before B and B before C",
		"A before B and A overlaps C",
		"A.x overlaps B.x and A.y overlaps B.y",
	} {
		q, _ := intervaljoin.ParseQuery(qs)
		fmt.Println(intervaljoin.Plan(q).Name())
	}
	// Output:
	// rccis
	// all-matrix
	// all-seq-matrix
	// gen-matrix
}

// Contradictory Allen conditions are detected before any data is read.
func ExampleProvablyEmpty() {
	q, _ := intervaljoin.ParseQuery("A before B and B before C and C before A")
	fmt.Println(intervaljoin.ProvablyEmpty(q))
	// Output: true
}
