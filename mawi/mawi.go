// Package mawi exposes the packet-trace simulator as public API: synthetic
// traces calibrated to the paper's six MAWI trans-Pacific backbone extracts
// (Table 2), and the packet-train construction the paper derives its
// real-data intervals from.
package mawi

import "intervaljoin/internal/trace"

// Packet is one captured packet: a flow id and an arrival time in
// milliseconds from the window start.
type Packet = trace.Packet

// Profile is one trace's aggregate statistics, the synthesiser's
// calibration target.
type Profile = trace.Profile

// DefaultCutoffMs is the paper's 500 ms packet-train inter-arrival cut-off.
const DefaultCutoffMs = trace.DefaultCutoffMs

// Profiles lists the six traces of the paper's Table 2 (P03–P08) with their
// published packet and train counts.
func Profiles() []Profile {
	out := make([]Profile, len(trace.MAWI))
	copy(out, trace.MAWI)
	return out
}

// ProfileByName returns the named profile ("P03".."P08").
var ProfileByName = trace.ProfileByName

// Synthesize generates a packet stream matching the profile's packet and
// train counts in expectation, scaled by scale in (0, 1].
var Synthesize = trace.Synthesize

// BuildTrains groups each flow's packets into trains: a new train starts
// whenever a same-flow gap reaches cutoffMs. It returns the train duration
// intervals sorted by start.
var BuildTrains = trace.BuildTrains

// ReplicateTrains tiles jittered copies of the trains up to the target
// count, the paper's procedure for its fixed 3M-train datasets.
var ReplicateTrains = trace.ReplicateTrains

// TrainsRelation wraps train intervals as a single-attribute relation.
var TrainsRelation = trace.TrainsRelation
