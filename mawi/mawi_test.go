package mawi_test

import (
	"testing"

	"intervaljoin/mawi"
)

func TestPublicTracePipeline(t *testing.T) {
	if len(mawi.Profiles()) != 6 {
		t.Fatalf("profiles = %d, want 6", len(mawi.Profiles()))
	}
	p, err := mawi.ProfileByName("P06")
	if err != nil {
		t.Fatal(err)
	}
	packets, err := mawi.Synthesize(p, 0.001, 1)
	if err != nil {
		t.Fatal(err)
	}
	trains := mawi.BuildTrains(packets, mawi.DefaultCutoffMs)
	if len(trains) == 0 {
		t.Fatal("no trains built")
	}
	dense := mawi.ReplicateTrains(trains, 2*len(trains), p.DurationMs, 1)
	if len(dense) != 2*len(trains) {
		t.Fatalf("replicated to %d, want %d", len(dense), 2*len(trains))
	}
	rel := mawi.TrainsRelation("T", dense)
	if rel.Len() != len(dense) {
		t.Fatal("relation size mismatch")
	}
	// Profiles() returns a copy: mutating it must not affect the package.
	ps := mawi.Profiles()
	ps[0].Packets = -1
	if mawi.Profiles()[0].Packets == -1 {
		t.Fatal("Profiles exposes internal state")
	}
}
