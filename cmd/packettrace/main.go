// Command packettrace synthesises an Internet packet trace calibrated to
// one of the paper's MAWI profiles (Table 2) and emits either the raw
// packets or the packet-train intervals built with the inter-arrival
// cut-off.
//
// Usage:
//
//	packettrace -profile P04 [-scale 0.01] [-seed 1] [-cutoff 500] \
//	            [-emit trains|packets] [-replicate N] [-o out.txt]
//
// Train output is one "start,end" interval per line (milliseconds within
// the 15-minute window), directly consumable by ijoin. -replicate grows the
// train set to N intervals by jittered copying, the paper's procedure for
// its fixed 3M-train datasets.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"intervaljoin/internal/trace"
)

func main() {
	var (
		profileName = flag.String("profile", "P04", "trace profile: P03..P08")
		scale       = flag.Float64("scale", 0.01, "fraction of the profile's packet count")
		seed        = flag.Int64("seed", 1, "generator seed")
		cutoff      = flag.Int64("cutoff", trace.DefaultCutoffMs, "train inter-arrival cut-off (ms)")
		emit        = flag.String("emit", "trains", "what to write: trains|packets")
		replicate   = flag.Int("replicate", 0, "replicate trains to this count (0 = off)")
		oPath       = flag.String("o", "-", "output file ('-' = stdout)")
	)
	flag.Parse()

	profile, err := trace.ProfileByName(*profileName)
	if err != nil {
		fatal(err)
	}
	packets, err := trace.Synthesize(profile, *scale, *seed)
	if err != nil {
		fatal(err)
	}

	var out io.Writer = os.Stdout
	if *oPath != "-" {
		f, err := os.Create(*oPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}
	w := bufio.NewWriter(out)
	defer w.Flush()

	switch *emit {
	case "packets":
		for _, p := range packets {
			fmt.Fprintf(w, "%d %d\n", p.Flow, p.Time)
		}
	case "trains":
		trains := trace.BuildTrains(packets, *cutoff)
		if *replicate > 0 {
			trains = trace.ReplicateTrains(trains, *replicate, profile.DurationMs, *seed)
		}
		for _, iv := range trains {
			fmt.Fprintf(w, "%d,%d\n", iv.Start, iv.End)
		}
	default:
		fatal(fmt.Errorf("unknown -emit %q (want trains or packets)", *emit))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "packettrace:", err)
	os.Exit(1)
}
