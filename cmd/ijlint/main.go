// Command ijlint runs the module's domain-specific static analyzers: the
// invariants the MapReduce interval-join engine depends on but the compiler
// cannot check. It is wired into scripts/check.sh between vet and build;
// run it standalone with
//
//	go run ./cmd/ijlint ./...
//
// Findings can be suppressed with a //lint:ignore <analyzer> <reason>
// comment on (or immediately above) the offending line; the reason is
// mandatory. Exit status is 1 when any finding remains.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"intervaljoin/internal/lint"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list the analyzers and exit")
		only     = flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
		ban      = flag.String("ban", "", "additional comma-separated pkgpath.Func entries for hotpathban")
		hotpaths = flag.String("hotpaths", "", "override hotpathban's package-path scope (comma-separated substrings)")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: ijlint [flags] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the engine's invariant analyzers over module packages (default ./...).\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.All()
	if *only != "" {
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a := lint.ByName(strings.TrimSpace(name))
			if a == nil {
				fatalf("unknown analyzer %q (use -list)", name)
			}
			analyzers = append(analyzers, a)
		}
	}
	for _, entry := range splitList(*ban) {
		lint.BannedCalls[entry] = "an allocation-free alternative"
	}
	if *hotpaths != "" {
		lint.HotPathScope = splitList(*hotpaths)
	}

	wd, err := os.Getwd()
	if err != nil {
		fatalf("%v", err)
	}
	loader, err := lint.NewLoader(wd)
	if err != nil {
		fatalf("%v", err)
	}
	paths, err := loader.Expand(flag.Args())
	if err != nil {
		fatalf("%v", err)
	}

	findings := 0
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fatalf("%v", err)
		}
		for _, d := range lint.RunAnalyzers(pkg, analyzers) {
			findings++
			fmt.Println(relativize(loader.Root(), d))
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "ijlint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

// relativize shortens the diagnostic's file name relative to the module
// root for stable, readable output.
func relativize(root string, d lint.Diagnostic) lint.Diagnostic {
	if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		d.Pos.Filename = rel
	}
	return d
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ijlint: "+format+"\n", args...)
	os.Exit(1)
}
