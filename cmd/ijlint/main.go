// Command ijlint runs the module's domain-specific static analyzers: the
// invariants the MapReduce interval-join engine depends on but the compiler
// cannot check. It is wired into scripts/check.sh between vet and build;
// run it standalone with
//
//	go run ./cmd/ijlint ./...
//
// All requested packages are analyzed over one module-wide call graph, so
// the interprocedural analyzers (lockorder, goroutineleak, errorflow,
// emitterescape) see cross-package flows, and //lint:ignore directives
// that no longer suppress anything are themselves findings.
//
// Findings can be suppressed with a //lint:ignore <analyzer> <reason>
// comment on (or immediately above) the offending line; the reason is
// mandatory. Exit status is 1 when any finding remains.
//
// Machine-readable output: -json FILE writes the findings as JSON, and
// -annotate-from FILE re-renders a findings file as GitHub Actions
// ::error annotations without re-analyzing — CI runs the analysis once,
// uploads the JSON as an artifact, and annotates from it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"intervaljoin/internal/lint"
)

// findingsFile is the -json output shape, consumed by -annotate-from.
type findingsFile struct {
	Findings []finding `json:"findings"`
	Count    int       `json:"count"`
}

type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	var (
		list     = flag.Bool("list", false, "list the analyzers and exit")
		only     = flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
		ban      = flag.String("ban", "", "additional comma-separated pkgpath.Func entries for hotpathban")
		hotpaths = flag.String("hotpaths", "", "override hotpathban's package-path scope (comma-separated substrings)")
		jsonOut  = flag.String("json", "", "also write findings to this file as JSON")
		timing   = flag.Bool("time", false, "print per-analyzer wall time to stderr")
		annotate = flag.String("annotate-from", "", "emit GitHub ::error annotations from a -json findings file and exit (no analysis)")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: ijlint [flags] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the engine's invariant analyzers over module packages (default ./...).\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *annotate != "" {
		if err := annotateFrom(*annotate); err != nil {
			fatalf("%v", err)
		}
		return
	}

	analyzers := lint.All()
	if *only != "" {
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a := lint.ByName(strings.TrimSpace(name))
			if a == nil {
				fatalf("unknown analyzer %q (use -list)", name)
			}
			analyzers = append(analyzers, a)
		}
	}
	for _, entry := range splitList(*ban) {
		lint.BannedCalls[entry] = "an allocation-free alternative"
	}
	if *hotpaths != "" {
		lint.HotPathScope = splitList(*hotpaths)
	}

	wd, err := os.Getwd()
	if err != nil {
		fatalf("%v", err)
	}
	loader, err := lint.NewLoader(wd)
	if err != nil {
		fatalf("%v", err)
	}
	paths, err := loader.Expand(flag.Args())
	if err != nil {
		fatalf("%v", err)
	}

	var pkgs []*lint.Package
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fatalf("%v", err)
		}
		pkgs = append(pkgs, pkg)
	}
	diags, timings := lint.RunModule(pkgs, analyzers)

	out := findingsFile{Findings: []finding{}}
	for _, d := range diags {
		d = relativize(loader.Root(), d)
		fmt.Println(d)
		out.Findings = append(out.Findings, finding{
			File:     filepath.ToSlash(d.Pos.Filename),
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	out.Count = len(out.Findings)

	if *timing {
		for _, tm := range timings {
			fmt.Fprintf(os.Stderr, "%-16s %10.1fms\n", tm.Analyzer, float64(tm.Wall.Microseconds())/1000)
		}
	}
	if *jsonOut != "" {
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fatalf("%v", err)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			fatalf("%v", err)
		}
	}
	if out.Count > 0 {
		fmt.Fprintf(os.Stderr, "ijlint: %d finding(s)\n", out.Count)
		os.Exit(1)
	}
}

// annotateFrom renders a findings JSON file as GitHub Actions workflow
// commands, one ::error per finding, so findings show up inline on the PR
// diff. Messages have their newlines escaped per the workflow-command
// encoding (irrelevant for ijlint's single-line messages, but cheap).
func annotateFrom(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var in findingsFile
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	esc := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A")
	for _, f := range in.Findings {
		fmt.Printf("::error file=%s,line=%d,col=%d,title=ijlint %s::%s [%s]\n",
			f.File, f.Line, f.Col, f.Analyzer, esc.Replace(f.Message), f.Analyzer)
	}
	return nil
}

// relativize shortens the diagnostic's file name relative to the module
// root for stable, readable output.
func relativize(root string, d lint.Diagnostic) lint.Diagnostic {
	if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		d.Pos.Filename = rel
	}
	return d
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ijlint: "+format+"\n", args...)
	os.Exit(1)
}
