package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"intervaljoin/internal/cache"
	"intervaljoin/internal/obs"
	"intervaljoin/internal/obs/live"
)

// selfcheckSpec drives the live-scrape gate: how many queries to fire and
// where the validated /metrics snapshot lands.
type selfcheckSpec struct {
	query      string
	queries    int
	tmin, tmax int64
	scrapeOut  string
}

// runSelfcheck boots the real server on a loopback port, drives the query
// mix at it over HTTP, scrapes /metrics mid-load and after, and fails on
// any telemetry defect: exposition-format violations, key series missing
// or frozen, or a sampled trace that never materialised. The final scrape
// is written to spec.scrapeOut so CI can archive it.
func runSelfcheck(svc *cache.Service, tracer *obs.Tracer, cfg serveConfig, spec selfcheckSpec) error {
	s, err := newServer(svc, tracer, cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: s.mux(), ReadHeaderTimeout: 5 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	fail := func(err error) error {
		httpSrv.Close()
		<-errc
		return fmt.Errorf("selfcheck: %w", err)
	}

	// The window mix cycles a handful of overlapping windows so the run
	// exercises misses, partial hits, and full hits — engine counters and
	// the cache bridge all have to move.
	n := spec.queries
	if n < 4 {
		n = 4
	}
	span := spec.tmax - spec.tmin
	if span < 8 {
		span = 8
	}
	window := func(i int) (int64, int64) {
		lo := spec.tmin + int64(i%4)*span/8
		return lo, lo + span/4
	}
	post := func(i int) error {
		lo, hi := window(i)
		body, err := json.Marshal(queryRequest{Query: spec.query, Lo: lo, Hi: hi})
		if err != nil {
			return err
		}
		resp, err := http.Post(base+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		out, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("query %d: status %d: %s", i, resp.StatusCode, out)
		}
		return nil
	}

	for i := 0; i < n/2; i++ {
		if err := post(i); err != nil {
			return fail(err)
		}
	}
	mid, err := scrape(base)
	if err != nil {
		return fail(err)
	}
	for i := n / 2; i < n; i++ {
		if err := post(i); err != nil {
			return fail(err)
		}
	}
	final, err := scrape(base)
	if err != nil {
		return fail(err)
	}

	// /stats back-compat: still valid JSON.
	stats, err := getBody(base + "/stats")
	if err != nil {
		return fail(err)
	}
	if !json.Valid(stats) {
		return fail(fmt.Errorf("/stats is not valid JSON"))
	}

	if err := checkScrapes(mid, final, n); err != nil {
		return fail(err)
	}
	if s.traces != nil {
		if err := checkTraceDir(cfg.traceDir); err != nil {
			return fail(err)
		}
	}
	if spec.scrapeOut != "" {
		if err := os.MkdirAll(filepath.Dir(spec.scrapeOut), 0o755); err != nil {
			return fail(err)
		}
		if err := os.WriteFile(spec.scrapeOut, final, 0o644); err != nil {
			return fail(err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return fail(err)
	}
	if err := <-errc; err != nil && err != http.ErrServerClosed {
		return fmt.Errorf("selfcheck: %w", err)
	}
	fmt.Printf("selfcheck: ok — %d queries, %d metric samples validated, scrape at %s\n",
		n, countSamples(final), spec.scrapeOut)
	return nil
}

// scrape fetches and strictly validates /metrics, returning the raw text.
func scrape(base string) ([]byte, error) {
	body, err := getBody(base + "/metrics")
	if err != nil {
		return nil, err
	}
	if err := live.Validate(bytes.NewReader(body)); err != nil {
		return nil, fmt.Errorf("/metrics failed validation: %w", err)
	}
	return body, nil
}

func getBody(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}

// checkScrapes asserts the key series exist and moved between the
// mid-load and final scrapes.
func checkScrapes(mid, final []byte, n int) error {
	midS, err := live.Parse(bytes.NewReader(mid))
	if err != nil {
		return err
	}
	finS, err := live.Parse(bytes.NewReader(final))
	if err != nil {
		return err
	}
	midCount, ok := findSample(midS, "ij_query_latency_seconds_count")
	if !ok {
		return fmt.Errorf("mid scrape: ij_query_latency_seconds_count missing")
	}
	finCount, ok := findSample(finS, "ij_query_latency_seconds_count")
	if !ok {
		return fmt.Errorf("final scrape: ij_query_latency_seconds_count missing")
	}
	if finCount <= midCount {
		return fmt.Errorf("ij_query_latency_seconds_count did not move: mid %v, final %v", midCount, finCount)
	}
	if finCount != float64(n) {
		return fmt.Errorf("ij_query_latency_seconds_count = %v, want %d", finCount, n)
	}
	for _, name := range []string{
		"ij_inflight",
		"ij_draining",
		"ij_cache_hit_ratio",
		"ij_cache_lookups",
		"ij_cache_bytes_in_use",
		"ij_admission_rejected_total",
		"ij_engine_runs_total",
		"ij_engine_output_records_total",
		"ij_query_window_span_count",
	} {
		if _, ok := findSample(finS, name); !ok {
			return fmt.Errorf("final scrape: %s missing", name)
		}
	}
	if v, ok := findSample(finS, "ij_engine_runs_total"); !ok || v <= 0 {
		return fmt.Errorf("ij_engine_runs_total = %v, want > 0 (delta joins ran)", v)
	}
	if v, ok := findSample(finS, "ij_cache_hit_ratio"); !ok || v <= 0 {
		return fmt.Errorf("ij_cache_hit_ratio = %v, want > 0 (the mix repeats windows)", v)
	}
	okReq := false
	for _, sm := range finS {
		if sm.Name == "ij_requests_total" && sm.Label("code") == "200" && sm.Value > 0 {
			okReq = true
		}
	}
	if !okReq {
		return fmt.Errorf(`ij_requests_total{code="200"} missing or zero`)
	}
	return nil
}

// findSample returns the value of the first sample with the given name.
func findSample(samples []live.Sample, name string) (float64, bool) {
	for _, s := range samples {
		if s.Name == name {
			return s.Value, true
		}
	}
	return 0, false
}

func countSamples(text []byte) int {
	samples, err := live.Parse(bytes.NewReader(text))
	if err != nil {
		return 0
	}
	return len(samples)
}

// checkTraceDir asserts at least one sampled query trace landed and is
// Chrome-trace-shaped JSON (an object with a traceEvents array).
func checkTraceDir(dir string) error {
	paths, err := filepath.Glob(filepath.Join(dir, "query-*.trace.json"))
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("no sampled query trace in %s", dir)
	}
	raw, err := os.ReadFile(paths[0])
	if err != nil {
		return err
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("%s: not valid trace JSON: %w", paths[0], err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("%s: empty traceEvents", paths[0])
	}
	return nil
}
