package main

import (
	"strconv"
	"time"

	"intervaljoin/internal/cache"
	"intervaljoin/internal/mr"
	"intervaljoin/internal/obs/live"
)

// telemetry is the server's live metric surface: every handle is
// pre-resolved at startup so the per-request path touches only atomics
// (and stays a nil-check no-op when telemetry is disabled — the
// TestLiveDisabledZeroCost contract).
type telemetry struct {
	reg *live.Registry

	latency    *live.LatencyHist // ij_query_latency_seconds
	windowSpan *live.Hist        // ij_query_window_span
	inflight   *live.Gauge       // ij_inflight
	draining   *live.Gauge       // ij_draining
	rejected   *live.Counter     // ij_admission_rejected_total

	requests     map[int]*live.Counter // ij_requests_total{code=...}, pre-resolved
	requestsVec  *live.CounterVec
	hitSegments  *live.Counter // ij_query_hit_segments_total
	deltaWindows *live.Counter // ij_query_delta_windows_total
	fullHits     *live.Counter // ij_query_full_hits_total
	rowsServed   *live.Counter // ij_query_rows_total
	slowQueries  *live.Counter // ij_slow_queries_total
	traces       *live.Counter // ij_query_traces_written_total

	engine *mr.LiveSet
}

// requestCodes are the status codes the handlers can produce; their
// counters are resolved once here so the hot path never joins label
// values.
var requestCodes = []int{200, 400, 404, 405, 422, 429, 500, 503}

// newTelemetry builds the registry, the request series, the engine
// bridge, and the cache stats collector. A nil svc (or disabled
// telemetry) is handled by the callees' nil contracts.
func newTelemetry(svc *cache.Service) *telemetry {
	reg := live.NewRegistry()
	t := &telemetry{
		reg:        reg,
		latency:    reg.Latency("ij_query_latency_seconds", "service-side query latency, successful queries"),
		windowSpan: reg.Hist("ij_query_window_span", "closed window span (hi-lo+1) of successful queries"),
		inflight:   reg.Gauge("ij_inflight", "queries currently in the join path"),
		draining:   reg.Gauge("ij_draining", "1 while the server is draining for shutdown"),
		rejected:   reg.Counter("ij_admission_rejected_total", "queries rejected by admission control (429)"),

		requestsVec:  reg.CounterVec("ij_requests_total", "requests by HTTP status code", "code"),
		hitSegments:  reg.Counter("ij_query_hit_segments_total", "cached segments merged into answers"),
		deltaWindows: reg.Counter("ij_query_delta_windows_total", "uncovered gap windows joined by the engine"),
		fullHits:     reg.Counter("ij_query_full_hits_total", "queries answered entirely from cache"),
		rowsServed:   reg.Counter("ij_query_rows_total", "result rows returned to clients"),
		slowQueries:  reg.Counter("ij_slow_queries_total", "queries over the slow-query threshold"),
		traces:       reg.Counter("ij_query_traces_written_total", "per-query Chrome traces written"),

		engine: mr.NewLiveSet(reg),
	}
	t.requests = make(map[int]*live.Counter, len(requestCodes))
	for _, code := range requestCodes {
		t.requests[code] = t.requestsVec.With(strconv.Itoa(code))
	}
	cache.RegisterLive(reg, svc)
	return t
}

// countRequest increments the status-code series, falling back to a
// lazily created series for a code outside the pre-resolved set.
func (t *telemetry) countRequest(code int) {
	if t == nil {
		return
	}
	if c, ok := t.requests[code]; ok {
		c.Inc()
		return
	}
	t.requestsVec.With(strconv.Itoa(code)).Inc()
}

// observeAnswer records a successful query's latency, window span, cache
// provenance, and — when delta joins ran — the engine counters.
func (t *telemetry) observeAnswer(wall time.Duration, span int64, hitSegments, deltaWindows, rows int, engine *mr.Metrics) {
	if t == nil {
		return
	}
	t.latency.Observe(wall)
	t.windowSpan.Observe(span)
	t.hitSegments.Add(int64(hitSegments))
	t.deltaWindows.Add(int64(deltaWindows))
	if deltaWindows == 0 {
		t.fullHits.Inc()
	}
	t.rowsServed.Add(int64(rows))
	t.engine.Publish(engine)
}
