package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"intervaljoin/internal/obs"
)

// traceRing writes per-query Chrome trace files into a directory and
// keeps only the newest keep files: sampled tracing on a long-running
// service must have bounded disk use, so old traces age out as new
// sampled queries arrive.
type traceRing struct {
	dir  string
	keep int

	mu    sync.Mutex
	files []string
}

const defaultTraceKeep = 16

// newTraceRing creates the directory and the ring. keep <= 0 selects the
// default of 16 files.
func newTraceRing(dir string, keep int) (*traceRing, error) {
	if keep <= 0 {
		keep = defaultTraceKeep
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &traceRing{dir: dir, keep: keep}, nil
}

// write dumps the snapshot as query-<id>.trace.json (Perfetto-loadable
// Chrome trace_event JSON) and evicts the oldest file beyond the ring
// size. Returns the written path.
func (r *traceRing) write(id int64, snap *obs.Snapshot) (string, error) {
	path := filepath.Join(r.dir, fmt.Sprintf("query-%06d.trace.json", id))
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	if err := obs.WriteChromeTrace(f, snap); err != nil {
		f.Close()
		return "", err
	}
	if err := f.Close(); err != nil {
		return "", err
	}
	var evict string
	r.mu.Lock()
	r.files = append(r.files, path)
	if len(r.files) > r.keep {
		evict = r.files[0]
		r.files = r.files[1:]
	}
	r.mu.Unlock()
	if evict != "" {
		// Best effort: a missing old trace is not worth failing a query.
		os.Remove(evict)
	}
	return path, nil
}
