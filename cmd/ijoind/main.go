// Command ijoind is the long-running interval-join service: it holds
// resident, pre-staged relations on the engine's store and answers
// windowed join queries over an HTTP/JSON API, serving covered time spans
// from a semantic segment cache and running the join engine only over the
// uncovered delta windows (see docs/SERVICE.md).
//
// Serve mode:
//
//	ijoind -rel R1=a.txt -rel R2=b.txt [-addr :7077] [-cache-mb 64]
//	       [-max-inflight 4] [-workers N] [-partitions 16] [-per-dim 6]
//	       [-algorithm name] [-metrics metrics.json]
//	       [-log-level info] [-slow-query 2s]
//	       [-trace-dir DIR] [-trace-sample N] [-trace-keep 16]
//
//	POST /query         {"query":"R1 overlaps R2","lo":0,"hi":5000}
//	                    → {"rows":[[3,7],...],"hit_segments":1,...}
//	GET  /metrics       → Prometheus text-format telemetry (docs/OBSERVABILITY.md)
//	GET  /stats         → cache accounting JSON (back-compat)
//	GET  /healthz       → 200 "ok" (503 while draining)
//	GET  /debug/pprof/  → runtime profiles
//
// Admission control holds at most -max-inflight queries in the join path;
// excess requests get 429. Requests are logged as structured JSON
// (log/slog) with a per-request id; queries slower than -slow-query get a
// warning line. With -trace-dir set, every -trace-sample'th query — plus
// the query after any slow one — runs under a fresh tracer and dumps a
// Perfetto-loadable Chrome trace into a bounded ring of files.
// SIGINT/SIGTERM drains in-flight queries via http.Server.Shutdown,
// answers new ones with 503, flushes -metrics, and exits.
//
// Bench mode (-bench) runs the zipfian query-mix benchmark without HTTP:
// a cold pass (every query joined from scratch) against a warm pass (the
// same mix through the segment cache), verifying byte-identical row sets,
// and writes the cache section of metrics.json that benchsummary -cache
// reads. Without -rel bindings it generates the paper's Table 1 relations.
//
// Selfcheck mode (-selfcheck) boots the server on a loopback port, fires
// the query mix at it over HTTP, scrapes and validates /metrics, verifies
// a sampled trace appeared, writes the scrape to -scrape-out, and exits
// non-zero on any telemetry defect — the live-scrape gate scripts/check.sh
// runs.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"intervaljoin"
	"intervaljoin/internal/cache"
	"intervaljoin/internal/core"
	"intervaljoin/internal/dfs"
	"intervaljoin/internal/mr"
	"intervaljoin/internal/obs"
	"intervaljoin/internal/obs/live"
	"intervaljoin/internal/query"
	"intervaljoin/internal/relation"
	"intervaljoin/internal/workload"
)

type relArg struct {
	name, path string
}

// serveConfig carries the serve-mode knobs from flag parsing to serve().
type serveConfig struct {
	addr        string
	maxInflight int
	metricsOut  string
	logLevel    string
	slowQuery   time.Duration
	traceDir    string
	traceSample int64
	traceKeep   int
}

func main() {
	var (
		addr       = flag.String("addr", ":7077", "HTTP listen address")
		cacheMB    = flag.Int64("cache-mb", 64, "segment cache byte budget in MiB")
		maxInfl    = flag.Int("max-inflight", 4, "admission control: concurrent queries beyond this get 429")
		workers    = flag.Int("workers", 0, "engine parallelism (0 = GOMAXPROCS)")
		partitions = flag.Int("partitions", 16, "partitions for 1-D algorithms")
		perDim     = flag.Int("per-dim", 6, "partitions per grid dimension for matrix algorithms")
		algorithm  = flag.String("algorithm", "", "join algorithm (default: planner choice per query)")
		dataDir    = flag.String("data-dir", "", "store relations and intermediates on disk under this directory")
		metricsOut = flag.String("metrics", "", "write metrics.json (with the cache section) here on shutdown / after -bench")
		logLevel   = flag.String("log-level", "info", "structured log level: debug, info, warn, error")
		slowQuery  = flag.Duration("slow-query", 2*time.Second, "log queries slower than this as slow (0 disables)")
		traceDir   = flag.String("trace-dir", "", "write sampled per-query Chrome traces into this directory (empty disables)")
		traceN     = flag.Int64("trace-sample", 0, "with -trace-dir, trace every Nth query (0: only latency-triggered captures)")
		traceKeep  = flag.Int("trace-keep", defaultTraceKeep, "bounded trace ring: keep at most this many trace files")
		bench      = flag.Bool("bench", false, "run the zipfian query-mix benchmark and exit (no HTTP)")
		selfcheck  = flag.Bool("selfcheck", false, "boot on a loopback port, drive the query mix over HTTP, validate /metrics, and exit")
		scrapeOut  = flag.String("scrape-out", "artifacts/live-metrics.prom", "selfcheck: write the validated /metrics scrape here")
		benchQuery = flag.String("query", "R1 overlaps R2", "bench/selfcheck: the join query of the mix")
		queries    = flag.Int("queries", 200, "bench/selfcheck: number of windows in the mix")
		skew       = flag.Float64("skew", 1.5, "bench: zipf exponent of the hotspot popularity (>1)")
		hotspots   = flag.Int("hotspots", 8, "bench: number of hot window centers")
		rows       = flag.Int("rows", 20_000, "bench/selfcheck: generated rows per relation when no -rel is given")
		seed       = flag.Int64("seed", 1, "bench: generation and mix seed")
	)
	var relArgs []relArg
	flag.Func("rel", "resident relation binding name=file (repeatable)", func(s string) error {
		eq := strings.IndexByte(s, '=')
		if eq <= 0 || eq == len(s)-1 {
			return fmt.Errorf("want name=file, got %q", s)
		}
		relArgs = append(relArgs, relArg{name: s[:eq], path: s[eq+1:]})
		return nil
	})
	flag.Parse()

	tracer := obs.New(obs.Options{})
	var store dfs.Store = dfs.NewMem()
	if *dataDir != "" {
		d, err := dfs.NewDisk(*dataDir)
		if err != nil {
			fatal(err)
		}
		store = d
	}
	engine := mr.NewEngine(mr.Config{Store: store, Workers: *workers, Tracer: tracer})

	var algFn func(*query.Query) core.Algorithm
	if *algorithm != "" {
		alg, err := intervaljoin.AlgorithmByName(*algorithm)
		if err != nil {
			fatal(err)
		}
		algFn = func(*query.Query) core.Algorithm { return alg }
	}
	svc, err := cache.NewService(cache.ServiceConfig{
		Engine:     engine,
		CacheBytes: *cacheMB << 20,
		Tracer:     tracer,
		Opts:       core.Options{Partitions: *partitions, PartitionsPerDim: *perDim},
		Algorithm:  algFn,
	})
	if err != nil {
		fatal(err)
	}

	rels, err := loadOrGenerate(relArgs, *bench || *selfcheck, *rows, *seed)
	if err != nil {
		fatal(err)
	}
	var tmin, tmax int64 = 0, 1
	if t0, tn, ok := relation.Bounds(rels...); ok {
		tmin, tmax = t0, tn
	}
	for _, r := range rels {
		if _, err := svc.Register(r); err != nil {
			fatal(err)
		}
	}

	if *bench {
		if err := runBench(svc, tracer, benchSpec{
			query: *benchQuery, queries: *queries, skew: *skew, hotspots: *hotspots,
			tmin: tmin, tmax: tmax, seed: *seed, metricsOut: *metricsOut,
		}); err != nil {
			fatal(err)
		}
		return
	}
	cfg := serveConfig{
		addr:        *addr,
		maxInflight: *maxInfl,
		metricsOut:  *metricsOut,
		logLevel:    *logLevel,
		slowQuery:   *slowQuery,
		traceDir:    *traceDir,
		traceSample: *traceN,
		traceKeep:   *traceKeep,
	}
	if *selfcheck {
		if err := runSelfcheck(svc, tracer, cfg, selfcheckSpec{
			query: *benchQuery, queries: *queries, tmin: tmin, tmax: tmax,
			scrapeOut: *scrapeOut,
		}); err != nil {
			fatal(err)
		}
		return
	}
	if err := serve(svc, tracer, cfg); err != nil {
		fatal(err)
	}
}

// loadOrGenerate loads the -rel bindings, or (bench and selfcheck modes
// only) generates the paper's Table 1 relations R1 and R2.
func loadOrGenerate(relArgs []relArg, generate bool, rows int, seed int64) ([]*relation.Relation, error) {
	if len(relArgs) == 0 {
		if !generate {
			return nil, fmt.Errorf("no -rel bindings; serve mode needs resident relations")
		}
		r1, err := workload.Generate(workload.Table1Spec("R1", rows, seed))
		if err != nil {
			return nil, err
		}
		r2, err := workload.Generate(workload.Table1Spec("R2", rows, seed+1))
		if err != nil {
			return nil, err
		}
		return []*relation.Relation{r1, r2}, nil
	}
	rels := make([]*relation.Relation, 0, len(relArgs))
	for _, ra := range relArgs {
		rel, err := relation.LoadFile(relation.NewSchema(ra.name), ra.path)
		if err != nil {
			return nil, err
		}
		rels = append(rels, rel)
	}
	return rels, nil
}

// ---- serve mode ----

// drainTimeout bounds graceful shutdown: Shutdown waits this long for
// in-flight queries before closing connections hard.
const drainTimeout = 30 * time.Second

type server struct {
	svc      *cache.Service
	tracer   *obs.Tracer
	tel      *telemetry
	log      *slog.Logger
	inflight chan struct{}
	draining atomic.Bool

	reqSeq   atomic.Int64 // request ids, all endpoints
	querySeq atomic.Int64 // admitted /query requests, drives sampling

	slowQuery   time.Duration
	traceSample int64
	traces      *traceRing
	slowArm     atomic.Bool // latency-triggered capture: trace the next query
}

type queryRequest struct {
	Query string `json:"query"`
	Lo    int64  `json:"lo"`
	Hi    int64  `json:"hi"`
}

type windowJSON struct {
	Lo int64 `json:"lo"`
	Hi int64 `json:"hi"`
}

type queryResponse struct {
	Rows         [][]int64    `json:"rows"`
	Window       windowJSON   `json:"window"`
	HitSegments  int          `json:"hit_segments"`
	DeltaWindows []windowJSON `json:"delta_windows,omitempty"`
	CachedRows   int64        `json:"cached_rows"`
	DeltaRows    int64        `json:"delta_rows"`
	Algorithm    string       `json:"algorithm,omitempty"`
	WallNS       int64        `json:"wall_ns"`
}

// parseLogLevel maps the -log-level flag onto slog levels.
func parseLogLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown -log-level %q (want debug, info, warn or error)", s)
}

// newServer assembles the handler state shared by serve and selfcheck.
func newServer(svc *cache.Service, tracer *obs.Tracer, cfg serveConfig) (*server, error) {
	level, err := parseLogLevel(cfg.logLevel)
	if err != nil {
		return nil, err
	}
	maxInflight := cfg.maxInflight
	if maxInflight <= 0 {
		maxInflight = 1
	}
	s := &server{
		svc:         svc,
		tracer:      tracer,
		tel:         newTelemetry(svc),
		log:         slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: level})),
		inflight:    make(chan struct{}, maxInflight),
		slowQuery:   cfg.slowQuery,
		traceSample: cfg.traceSample,
	}
	if cfg.traceDir != "" {
		ring, err := newTraceRing(cfg.traceDir, cfg.traceKeep)
		if err != nil {
			return nil, err
		}
		s.traces = ring
	}
	return s, nil
}

// mux builds the server's route table.
func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func serve(svc *cache.Service, tracer *obs.Tracer, cfg serveConfig) error {
	s, err := newServer(svc, tracer, cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Handler: s.mux(),
		// A client that dribbles its headers must not pin a connection
		// forever; body reads are bounded by the drain deadline instead.
		ReadHeaderTimeout: 5 * time.Second,
	}
	// The serving line keeps its legacy plain format — cmd/cmdtest and
	// operator scripts parse the address out of it; structured request
	// logs follow on the same stream.
	fmt.Fprintf(os.Stderr, "ijoind: serving %v on %s (relations: %s)\n",
		time.Now().Format(time.RFC3339), ln.Addr(), strings.Join(svc.Relations(), ", "))

	// Graceful shutdown: the first signal flips the server to draining —
	// new queries see 503 — and http.Server.Shutdown waits (bounded by
	// drainTimeout) for in-flight handlers before closing connections;
	// then metrics flush and exit.
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() {
		<-sigc
		s.startDrain()
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		done <- httpSrv.Shutdown(ctx)
	}()
	err = httpSrv.Serve(ln)
	if err == http.ErrServerClosed {
		err = <-done
	}
	if cfg.metricsOut != "" {
		if werr := writeFileWith(cfg.metricsOut, func(w io.Writer) error {
			return cacheReportJSON(w, svc, tracer, 0, 0)
		}); werr != nil && err == nil {
			err = werr
		}
		s.log.Info("metrics flushed", "path", cfg.metricsOut)
	}
	return err
}

// startDrain flips the server into drain state (idempotently safe).
func (s *server) startDrain() {
	s.draining.Store(true)
	s.tel.draining.Set(1)
	s.log.Info("draining in-flight queries")
}

// fail rejects a request: counts the status code, logs, and writes the
// error response.
func (s *server) fail(w http.ResponseWriter, lg *slog.Logger, code int, msg string) {
	s.tel.countRequest(code)
	if code == http.StatusTooManyRequests {
		s.tel.rejected.Inc()
	}
	lg.Warn("request rejected", "status", code, "error", msg)
	http.Error(w, msg, code)
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	id := s.reqSeq.Add(1)
	lg := s.log.With("req", id)
	if r.Method != http.MethodPost {
		s.fail(w, lg, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if s.draining.Load() {
		s.fail(w, lg, http.StatusServiceUnavailable, "draining")
		return
	}
	select {
	case s.inflight <- struct{}{}:
		s.tel.inflight.Inc()
		defer func() {
			s.tel.inflight.Dec()
			<-s.inflight
		}()
	default:
		s.fail(w, lg, http.StatusTooManyRequests, "too many in-flight queries")
		return
	}
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.fail(w, lg, http.StatusBadRequest, err.Error())
		return
	}
	q, err := query.Parse(req.Query)
	if err != nil {
		s.fail(w, lg, http.StatusBadRequest, err.Error())
		return
	}
	lg = lg.With("query", req.Query, "lo", req.Lo, "hi", req.Hi)

	// Sampling: every traceSample'th admitted query runs under a fresh
	// tracer, as does the first query after a slow one (the
	// latency-triggered capture) — traced runs return byte-identical rows,
	// only the recording differs.
	qid := s.querySeq.Add(1)
	var tr *obs.Tracer
	if s.traces != nil {
		if s.traceSample > 0 && qid%s.traceSample == 0 {
			tr = obs.New(obs.Options{})
		} else if s.slowArm.CompareAndSwap(true, false) {
			tr = obs.New(obs.Options{})
		}
	}
	var ans *cache.Answer
	if tr != nil {
		ans, err = s.svc.QueryTraced(q, cache.Window{Lo: req.Lo, Hi: req.Hi}, tr)
	} else {
		ans, err = s.svc.Query(q, cache.Window{Lo: req.Lo, Hi: req.Hi})
	}
	if err != nil {
		s.fail(w, lg, http.StatusUnprocessableEntity, err.Error())
		return
	}
	s.tel.countRequest(http.StatusOK)
	s.tel.observeAnswer(ans.Wall, req.Hi-req.Lo+1, ans.HitSegments, len(ans.DeltaWindows), len(ans.Rows), ans.Engine)

	var tracePath string
	if tr != nil {
		if tracePath, err = s.traces.write(qid, tr.Snapshot()); err != nil {
			lg.Warn("query trace not written", "error", err.Error())
			tracePath = ""
		} else {
			s.tel.traces.Inc()
		}
	}
	slow := s.slowQuery > 0 && ans.Wall > s.slowQuery
	if slow {
		s.tel.slowQueries.Inc()
		if s.traces != nil && tracePath == "" {
			// Arm the latency-triggered capture: the next query runs traced.
			s.slowArm.Store(true)
		}
	}
	attrs := []any{
		"status", http.StatusOK,
		"rows", len(ans.Rows),
		"hit_segments", ans.HitSegments,
		"delta_windows", len(ans.DeltaWindows),
		"algorithm", ans.Algorithm,
		"wall", ans.Wall.String(),
	}
	if tracePath != "" {
		attrs = append(attrs, "trace", tracePath)
	}
	if slow {
		lg.Warn("slow query", attrs...)
	} else {
		lg.Info("query", attrs...)
	}

	resp := queryResponse{
		Rows:        make([][]int64, len(ans.Rows)),
		Window:      windowJSON{Lo: int64(ans.Window.Lo), Hi: int64(ans.Window.Hi)},
		HitSegments: ans.HitSegments,
		CachedRows:  ans.CachedRows,
		DeltaRows:   ans.DeltaRows,
		Algorithm:   ans.Algorithm,
		WallNS:      ans.Wall.Nanoseconds(),
	}
	for i, t := range ans.Rows {
		resp.Rows[i] = t
	}
	for _, d := range ans.DeltaWindows {
		resp.DeltaWindows = append(resp.DeltaWindows, windowJSON{Lo: int64(d.Lo), Hi: int64(d.Hi)})
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		lg.Debug("response write failed", "error", err.Error())
	}
}

// handleMetrics serves the live registry in the Prometheus text format.
func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.tel.countRequest(http.StatusOK)
	w.Header().Set("Content-Type", live.ContentType)
	if err := live.WriteText(w, s.tel.reg.Snapshot()); err != nil {
		s.log.Debug("metrics write failed", "error", err.Error())
	}
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	// Render into a buffer first so a report error can still become a
	// clean 500 instead of a truncated 200 body.
	var buf bytes.Buffer
	if err := cacheReportJSON(&buf, s.svc, s.tracer, 0, 0); err != nil {
		s.fail(w, s.log, http.StatusInternalServerError, err.Error())
		return
	}
	s.tel.countRequest(http.StatusOK)
	w.Header().Set("Content-Type", "application/json")
	if _, err := w.Write(buf.Bytes()); err != nil {
		s.log.Debug("stats write failed", "error", err.Error())
	}
}

func (s *server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		s.tel.countRequest(http.StatusServiceUnavailable)
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	s.tel.countRequest(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// ---- bench mode ----

type benchSpec struct {
	query      string
	queries    int
	skew       float64
	hotspots   int
	tmin, tmax int64
	seed       int64
	metricsOut string
}

// runBench measures the zipfian mix cold (every query joined from scratch,
// cache bypassed) and warm (through the segment cache), verifies the row
// sets match query-by-query, and writes/prints the cache report.
func runBench(svc *cache.Service, tracer *obs.Tracer, b benchSpec) error {
	q, err := query.Parse(b.query)
	if err != nil {
		return err
	}
	mix, err := workload.ZipfQueryMix(workload.QueryMixSpec{
		N: b.queries, TMin: b.tmin, TMax: b.tmax,
		Hotspots: b.hotspots, Skew: b.skew, Seed: b.seed,
	})
	if err != nil {
		return err
	}
	var coldNS, warmNS int64
	for i, w := range mix {
		win := cache.Window{Lo: w.Lo, Hi: w.Hi}
		cold, err := svc.RunCold(q, win)
		if err != nil {
			return err
		}
		warm, err := svc.Query(q, win)
		if err != nil {
			return err
		}
		coldNS += cold.Wall.Nanoseconds()
		warmNS += warm.Wall.Nanoseconds()
		if err := sameRows(cold.Rows, warm.Rows); err != nil {
			return fmt.Errorf("query %d window [%d,%d]: warm result diverges from cold: %w", i, w.Lo, w.Hi, err)
		}
	}
	n := int64(len(mix))
	if n == 0 {
		return fmt.Errorf("empty query mix")
	}
	coldNS /= n
	warmNS /= n
	st := svc.Stats()
	speedup := float64(coldNS) / float64(max64(warmNS, 1))
	fmt.Printf("queries=%d hit_ratio=%.3f full_hits=%d partial_hits=%d misses=%d segments_merged=%d\n",
		st.Lookups, st.HitRatio(), st.FullHits, st.PartialHits, st.Misses, st.HitSegments)
	fmt.Printf("cold_mean=%v warm_mean=%v speedup=%.1fx cached_rows=%d delta_rows=%d evictions=%d\n",
		time.Duration(coldNS), time.Duration(warmNS), speedup, st.CachedRows, st.DeltaRows, st.Evictions)
	if b.metricsOut != "" {
		return writeFileWith(b.metricsOut, func(w io.Writer) error {
			return cacheReportJSON(w, svc, tracer, coldNS, warmNS)
		})
	}
	return nil
}

func sameRows(a, b []core.OutputTuple) error {
	if len(a) != len(b) {
		return fmt.Errorf("row counts differ: cold %d, warm %d", len(a), len(b))
	}
	for i := range a {
		ka, kb := a[i].Key(), b[i].Key()
		if ka != kb {
			return fmt.Errorf("row %d differs: cold %s, warm %s", i, ka, kb)
		}
	}
	return nil
}

// cacheReportJSON writes the metrics.json report with the cache section
// filled from the service's accounting (and mean cold/warm walls when the
// caller measured them).
func cacheReportJSON(w io.Writer, svc *cache.Service, tracer *obs.Tracer, coldNS, warmNS int64) error {
	st := svc.Stats()
	rep := obs.NewReport("cache-mix", tracer.Snapshot())
	rep.Cache = &obs.CacheReport{
		Lookups:       st.Lookups,
		FullHits:      st.FullHits,
		PartialHits:   st.PartialHits,
		Misses:        st.Misses,
		HitSegments:   st.HitSegments,
		CachedRows:    st.CachedRows,
		DeltaRows:     st.DeltaRows,
		SpanRequested: st.SpanRequested,
		SpanCovered:   st.SpanCovered,
		HitRatio:      st.HitRatio(),
		Insertions:    st.Insertions,
		Evictions:     st.Evictions,
		BytesInUse:    st.BytesInUse,
		BytesBudget:   st.BytesBudget,
		ColdNS:        coldNS,
		WarmNS:        warmNS,
	}
	if coldNS > 0 && warmNS > 0 {
		rep.Cache.Speedup = float64(coldNS) / float64(warmNS)
	}
	return rep.WriteJSON(w)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// writeFileWith creates path and streams fn's output into it.
func writeFileWith(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ijoind:", err)
	os.Exit(1)
}
