// Command ijoind is the long-running interval-join service: it holds
// resident, pre-staged relations on the engine's store and answers
// windowed join queries over an HTTP/JSON API, serving covered time spans
// from a semantic segment cache and running the join engine only over the
// uncovered delta windows (see docs/SERVICE.md).
//
// Serve mode:
//
//	ijoind -rel R1=a.txt -rel R2=b.txt [-addr :7077] [-cache-mb 64]
//	       [-max-inflight 4] [-workers N] [-partitions 16] [-per-dim 6]
//	       [-algorithm name] [-metrics metrics.json]
//
//	POST /query   {"query":"R1 overlaps R2","lo":0,"hi":5000}
//	              → {"rows":[[3,7],...],"hit_segments":1,"delta_windows":[...],...}
//	GET  /stats   → cache accounting JSON
//	GET  /healthz → 200 "ok" (503 while draining)
//
// Admission control holds at most -max-inflight queries in the join path;
// excess requests get 429. SIGINT/SIGTERM drains in-flight queries,
// answers new ones with 503, flushes -metrics, and exits.
//
// Bench mode (-bench) runs the zipfian query-mix benchmark without HTTP:
// a cold pass (every query joined from scratch) against a warm pass (the
// same mix through the segment cache), verifying byte-identical row sets,
// and writes the cache section of metrics.json that benchsummary -cache
// reads. Without -rel bindings it generates the paper's Table 1 relations.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"intervaljoin"
	"intervaljoin/internal/cache"
	"intervaljoin/internal/core"
	"intervaljoin/internal/dfs"
	"intervaljoin/internal/mr"
	"intervaljoin/internal/obs"
	"intervaljoin/internal/query"
	"intervaljoin/internal/relation"
	"intervaljoin/internal/workload"
)

type relArg struct {
	name, path string
}

func main() {
	var (
		addr       = flag.String("addr", ":7077", "HTTP listen address")
		cacheMB    = flag.Int64("cache-mb", 64, "segment cache byte budget in MiB")
		maxInfl    = flag.Int("max-inflight", 4, "admission control: concurrent queries beyond this get 429")
		workers    = flag.Int("workers", 0, "engine parallelism (0 = GOMAXPROCS)")
		partitions = flag.Int("partitions", 16, "partitions for 1-D algorithms")
		perDim     = flag.Int("per-dim", 6, "partitions per grid dimension for matrix algorithms")
		algorithm  = flag.String("algorithm", "", "join algorithm (default: planner choice per query)")
		dataDir    = flag.String("data-dir", "", "store relations and intermediates on disk under this directory")
		metricsOut = flag.String("metrics", "", "write metrics.json (with the cache section) here on shutdown / after -bench")
		bench      = flag.Bool("bench", false, "run the zipfian query-mix benchmark and exit (no HTTP)")
		benchQuery = flag.String("query", "R1 overlaps R2", "bench: the join query of the mix")
		queries    = flag.Int("queries", 200, "bench: number of windows in the mix")
		skew       = flag.Float64("skew", 1.5, "bench: zipf exponent of the hotspot popularity (>1)")
		hotspots   = flag.Int("hotspots", 8, "bench: number of hot window centers")
		rows       = flag.Int("rows", 20_000, "bench: generated rows per relation when no -rel is given")
		seed       = flag.Int64("seed", 1, "bench: generation and mix seed")
	)
	var relArgs []relArg
	flag.Func("rel", "resident relation binding name=file (repeatable)", func(s string) error {
		eq := strings.IndexByte(s, '=')
		if eq <= 0 || eq == len(s)-1 {
			return fmt.Errorf("want name=file, got %q", s)
		}
		relArgs = append(relArgs, relArg{name: s[:eq], path: s[eq+1:]})
		return nil
	})
	flag.Parse()

	tracer := obs.New(obs.Options{})
	var store dfs.Store = dfs.NewMem()
	if *dataDir != "" {
		d, err := dfs.NewDisk(*dataDir)
		if err != nil {
			fatal(err)
		}
		store = d
	}
	engine := mr.NewEngine(mr.Config{Store: store, Workers: *workers, Tracer: tracer})

	var algFn func(*query.Query) core.Algorithm
	if *algorithm != "" {
		alg, err := intervaljoin.AlgorithmByName(*algorithm)
		if err != nil {
			fatal(err)
		}
		algFn = func(*query.Query) core.Algorithm { return alg }
	}
	svc, err := cache.NewService(cache.ServiceConfig{
		Engine:     engine,
		CacheBytes: *cacheMB << 20,
		Tracer:     tracer,
		Opts:       core.Options{Partitions: *partitions, PartitionsPerDim: *perDim},
		Algorithm:  algFn,
	})
	if err != nil {
		fatal(err)
	}

	rels, err := loadOrGenerate(relArgs, *bench, *rows, *seed)
	if err != nil {
		fatal(err)
	}
	var tmin, tmax int64 = 0, 1
	if t0, tn, ok := relation.Bounds(rels...); ok {
		tmin, tmax = t0, tn
	}
	for _, r := range rels {
		if _, err := svc.Register(r); err != nil {
			fatal(err)
		}
	}

	if *bench {
		if err := runBench(svc, tracer, benchSpec{
			query: *benchQuery, queries: *queries, skew: *skew, hotspots: *hotspots,
			tmin: tmin, tmax: tmax, seed: *seed, metricsOut: *metricsOut,
		}); err != nil {
			fatal(err)
		}
		return
	}
	if err := serve(svc, tracer, *addr, *maxInfl, *metricsOut); err != nil {
		fatal(err)
	}
}

// loadOrGenerate loads the -rel bindings, or (bench mode only) generates
// the paper's Table 1 relations R1 and R2.
func loadOrGenerate(relArgs []relArg, bench bool, rows int, seed int64) ([]*relation.Relation, error) {
	if len(relArgs) == 0 {
		if !bench {
			return nil, fmt.Errorf("no -rel bindings; serve mode needs resident relations")
		}
		r1, err := workload.Generate(workload.Table1Spec("R1", rows, seed))
		if err != nil {
			return nil, err
		}
		r2, err := workload.Generate(workload.Table1Spec("R2", rows, seed+1))
		if err != nil {
			return nil, err
		}
		return []*relation.Relation{r1, r2}, nil
	}
	rels := make([]*relation.Relation, 0, len(relArgs))
	for _, ra := range relArgs {
		rel, err := relation.LoadFile(relation.NewSchema(ra.name), ra.path)
		if err != nil {
			return nil, err
		}
		rels = append(rels, rel)
	}
	return rels, nil
}

// ---- serve mode ----

type server struct {
	svc      *cache.Service
	tracer   *obs.Tracer
	inflight chan struct{}
	draining atomic.Bool
}

type queryRequest struct {
	Query string `json:"query"`
	Lo    int64  `json:"lo"`
	Hi    int64  `json:"hi"`
}

type windowJSON struct {
	Lo int64 `json:"lo"`
	Hi int64 `json:"hi"`
}

type queryResponse struct {
	Rows         [][]int64    `json:"rows"`
	Window       windowJSON   `json:"window"`
	HitSegments  int          `json:"hit_segments"`
	DeltaWindows []windowJSON `json:"delta_windows,omitempty"`
	CachedRows   int64        `json:"cached_rows"`
	DeltaRows    int64        `json:"delta_rows"`
	Algorithm    string       `json:"algorithm,omitempty"`
	WallNS       int64        `json:"wall_ns"`
}

func serve(svc *cache.Service, tracer *obs.Tracer, addr string, maxInflight int, metricsOut string) error {
	if maxInflight <= 0 {
		maxInflight = 1
	}
	s := &server{svc: svc, tracer: tracer, inflight: make(chan struct{}, maxInflight)}
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealth)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: mux}
	fmt.Fprintf(os.Stderr, "ijoind: serving %v on %s (relations: %s)\n",
		time.Now().Format(time.RFC3339), ln.Addr(), strings.Join(svc.Relations(), ", "))

	// Graceful shutdown: first signal stops accepting work — new queries
	// see 503 — and drains the in-flight ones; then metrics flush and exit.
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() {
		<-sigc
		s.draining.Store(true)
		fmt.Fprintln(os.Stderr, "ijoind: draining in-flight queries")
		// Take every admission slot: all in-flight queries have finished
		// once the channel fills.
		for i := 0; i < cap(s.inflight); i++ {
			s.inflight <- struct{}{}
		}
		done <- httpSrv.Close()
	}()
	err = httpSrv.Serve(ln)
	if err == http.ErrServerClosed {
		err = <-done
	}
	if metricsOut != "" {
		if werr := writeFileWith(metricsOut, func(w io.Writer) error {
			return cacheReportJSON(w, svc, tracer, 0, 0)
		}); werr != nil && err == nil {
			err = werr
		}
		fmt.Fprintf(os.Stderr, "ijoind: metrics flushed to %s\n", metricsOut)
	}
	return err
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	select {
	case s.inflight <- struct{}{}:
		defer func() { <-s.inflight }()
	default:
		http.Error(w, "too many in-flight queries", http.StatusTooManyRequests)
		return
	}
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	q, err := query.Parse(req.Query)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ans, err := s.svc.Query(q, cache.Window{Lo: req.Lo, Hi: req.Hi})
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	resp := queryResponse{
		Rows:        make([][]int64, len(ans.Rows)),
		Window:      windowJSON{Lo: int64(ans.Window.Lo), Hi: int64(ans.Window.Hi)},
		HitSegments: ans.HitSegments,
		CachedRows:  ans.CachedRows,
		DeltaRows:   ans.DeltaRows,
		Algorithm:   ans.Algorithm,
		WallNS:      ans.Wall.Nanoseconds(),
	}
	for i, t := range ans.Rows {
		resp.Rows[i] = t
	}
	for _, d := range ans.DeltaWindows {
		resp.DeltaWindows = append(resp.DeltaWindows, windowJSON{Lo: int64(d.Lo), Hi: int64(d.Hi)})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	cacheReportJSON(w, s.svc, s.tracer, 0, 0)
}

func (s *server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

// ---- bench mode ----

type benchSpec struct {
	query      string
	queries    int
	skew       float64
	hotspots   int
	tmin, tmax int64
	seed       int64
	metricsOut string
}

// runBench measures the zipfian mix cold (every query joined from scratch,
// cache bypassed) and warm (through the segment cache), verifies the row
// sets match query-by-query, and writes/prints the cache report.
func runBench(svc *cache.Service, tracer *obs.Tracer, b benchSpec) error {
	q, err := query.Parse(b.query)
	if err != nil {
		return err
	}
	mix, err := workload.ZipfQueryMix(workload.QueryMixSpec{
		N: b.queries, TMin: b.tmin, TMax: b.tmax,
		Hotspots: b.hotspots, Skew: b.skew, Seed: b.seed,
	})
	if err != nil {
		return err
	}
	var coldNS, warmNS int64
	for i, w := range mix {
		win := cache.Window{Lo: w.Lo, Hi: w.Hi}
		cold, err := svc.RunCold(q, win)
		if err != nil {
			return err
		}
		warm, err := svc.Query(q, win)
		if err != nil {
			return err
		}
		coldNS += cold.Wall.Nanoseconds()
		warmNS += warm.Wall.Nanoseconds()
		if err := sameRows(cold.Rows, warm.Rows); err != nil {
			return fmt.Errorf("query %d window [%d,%d]: warm result diverges from cold: %w", i, w.Lo, w.Hi, err)
		}
	}
	n := int64(len(mix))
	if n == 0 {
		return fmt.Errorf("empty query mix")
	}
	coldNS /= n
	warmNS /= n
	st := svc.Stats()
	speedup := float64(coldNS) / float64(max64(warmNS, 1))
	fmt.Printf("queries=%d hit_ratio=%.3f full_hits=%d partial_hits=%d misses=%d segments_merged=%d\n",
		st.Lookups, st.HitRatio(), st.FullHits, st.PartialHits, st.Misses, st.HitSegments)
	fmt.Printf("cold_mean=%v warm_mean=%v speedup=%.1fx cached_rows=%d delta_rows=%d evictions=%d\n",
		time.Duration(coldNS), time.Duration(warmNS), speedup, st.CachedRows, st.DeltaRows, st.Evictions)
	if b.metricsOut != "" {
		return writeFileWith(b.metricsOut, func(w io.Writer) error {
			return cacheReportJSON(w, svc, tracer, coldNS, warmNS)
		})
	}
	return nil
}

func sameRows(a, b []core.OutputTuple) error {
	if len(a) != len(b) {
		return fmt.Errorf("row counts differ: cold %d, warm %d", len(a), len(b))
	}
	for i := range a {
		ka, kb := a[i].Key(), b[i].Key()
		if ka != kb {
			return fmt.Errorf("row %d differs: cold %s, warm %s", i, ka, kb)
		}
	}
	return nil
}

// cacheReportJSON writes the metrics.json report with the cache section
// filled from the service's accounting (and mean cold/warm walls when the
// caller measured them).
func cacheReportJSON(w io.Writer, svc *cache.Service, tracer *obs.Tracer, coldNS, warmNS int64) error {
	st := svc.Stats()
	rep := obs.NewReport("cache-mix", tracer.Snapshot())
	rep.Cache = &obs.CacheReport{
		Lookups:       st.Lookups,
		FullHits:      st.FullHits,
		PartialHits:   st.PartialHits,
		Misses:        st.Misses,
		HitSegments:   st.HitSegments,
		CachedRows:    st.CachedRows,
		DeltaRows:     st.DeltaRows,
		SpanRequested: st.SpanRequested,
		SpanCovered:   st.SpanCovered,
		HitRatio:      st.HitRatio(),
		Insertions:    st.Insertions,
		Evictions:     st.Evictions,
		BytesInUse:    st.BytesInUse,
		BytesBudget:   st.BytesBudget,
		ColdNS:        coldNS,
		WarmNS:        warmNS,
	}
	if coldNS > 0 && warmNS > 0 {
		rep.Cache.Speedup = float64(coldNS) / float64(warmNS)
	}
	return rep.WriteJSON(w)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// writeFileWith creates path and streams fn's output into it.
func writeFileWith(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ijoind:", err)
	os.Exit(1)
}
