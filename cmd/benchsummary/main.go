// Command benchsummary condenses `go test -bench` output into a small JSON
// baseline file (benchstat-style medians across -count repetitions) and
// diffs two such baselines.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem -count 3 ./... | benchsummary -o BENCH_1.json
//	benchsummary -compare BENCH_1.json BENCH_2.json [-threshold 15] [-fail]
//
// Each benchmark's metrics (ns/op, B/op, allocs/op and any custom
// ReportMetric units such as pairs/op) are reduced to the median across
// repetitions, which is what makes the file stable enough to check in and
// diff on a noisy single-core machine.
//
// -compare prints a per-benchmark regression table (old/new ns/op and
// allocs/op with deltas) plus added and removed benchmarks; ns/op deltas
// beyond -threshold percent are flagged, and -fail turns any flagged
// regression into a non-zero exit for CI use. Sub-microsecond benchmarks
// are printed but never gated: at that scale the median moves tens of
// percent from binary code layout alone. Benchmarks reporting the columnar
// reduce kernels' per-family custom metrics (sweep/op, merge/op,
// generic/op) additionally get a per-kernel-family breakdown table.
//
// -skew old.json,new.json (or a single file) prints the reducer-balance
// table from metrics.json reports: per-reducer pair and wall-clock
// max/mean with the imbalance ratios, and deltas when two files are
// given. -skewgate <ceiling> (with -fail) turns a pair imbalance above
// the absolute ceiling into a non-zero exit — the skew-aware executor's
// CI gate.
//
// -cache old.json,new.json (or a single file) prints the semantic-cache
// table from metrics.json reports written by `ijoind -bench -metrics`:
// span hit ratio, full/partial hit counts, cached vs delta rows, eviction
// pressure and the warm/cold latency pair with the speedup, plus deltas
// when two files are given. -cachegate <floor> (with -fail) turns a span
// hit ratio below the absolute floor into a non-zero exit — the segment
// cache's CI gate.
//
// -phases old.json,new.json (or a single file) additionally prints a
// per-phase wall-clock table from metrics.json reports written by
// `ijoin -metrics` / `experiments -metrics`: the tracer's true wall per
// phase (overlapped pipeline cycles count once) next to the busy time and
// implied parallelism, with old-vs-new deltas when two files are given.
// -phasegate <phase> (with a two-file -phases) applies the -threshold /
// -fail gate to that phase's wall-clock delta, e.g. `-phasegate reduce`
// to hold the reduce-phase wall.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"intervaljoin/internal/obs"
)

// sample is one parsed benchmark line.
type sample struct {
	pkg        string
	iterations int64
	metrics    map[string]float64 // unit -> value, e.g. "ns/op" -> 840123
}

// entry is one benchmark's reduced record in the output file.
type entry struct {
	Name       string             `json:"name"`
	Package    string             `json:"package"`
	Runs       int                `json:"runs"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type baseline struct {
	Note       string  `json:"note"`
	GoVersion  string  `json:"go_version"`
	GOOS       string  `json:"goos"`
	GOARCH     string  `json:"goarch"`
	CPU        string  `json:"cpu,omitempty"`
	Benchmarks []entry `json:"benchmarks"`
}

func median(vals []float64) float64 {
	sort.Float64s(vals)
	n := len(vals)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return vals[n/2]
	}
	return (vals[n/2-1] + vals[n/2]) / 2
}

// parseLine parses "BenchmarkX-4   100   840 ns/op   32 B/op   1 allocs/op".
func parseLine(line string) (name string, s sample, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", sample{}, false
	}
	// Strip the -GOMAXPROCS suffix so counts on different machines compare.
	name = fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", sample{}, false
	}
	s = sample{iterations: iters, metrics: make(map[string]float64)}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", sample{}, false
		}
		s.metrics[fields[i+1]] = v
	}
	return name, s, len(s.metrics) > 0
}

// loadBaseline reads a JSON baseline written by the summarise mode.
func loadBaseline(path string) (baseline, error) {
	var b baseline
	data, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(data, &b); err != nil {
		return b, fmt.Errorf("%s: %w", path, err)
	}
	return b, nil
}

// gateFloorNS exempts sub-microsecond benchmarks from the pass/fail gate
// (their deltas are still printed). Below ~1µs/op a median shifts tens of
// percent from binary code layout and scheduler jitter alone — adding a
// test file to the package realigns the whole test binary — so flagging
// them fails runs on artifacts, not regressions.
const gateFloorNS = 1000.0

// compare prints a regression table between two baselines and returns the
// number of benchmarks whose ns/op regressed beyond threshold percent.
func compare(w io.Writer, old, new baseline, threshold float64) int {
	oldBy := make(map[string]entry, len(old.Benchmarks))
	for _, e := range old.Benchmarks {
		oldBy[e.Name] = e
	}
	newBy := make(map[string]entry, len(new.Benchmarks))
	for _, e := range new.Benchmarks {
		newBy[e.Name] = e
	}

	fmt.Fprintf(w, "%-34s %14s %14s %8s %12s %12s %8s\n",
		"benchmark", "old ns/op", "new ns/op", "delta", "old allocs", "new allocs", "delta")
	regressions := 0
	for _, ne := range new.Benchmarks {
		oe, ok := oldBy[ne.Name]
		if !ok {
			continue
		}
		ov, nv := oe.Metrics["ns/op"], ne.Metrics["ns/op"]
		allocCells := allocColumns(oe, ne)
		if ov == 0 || nv == 0 {
			fmt.Fprintf(w, "%-34s %14.0f %14.0f %8s%s\n", ne.Name, ov, nv, "n/a", allocCells)
			continue
		}
		delta := (nv - ov) / ov * 100
		flag := ""
		switch {
		case delta > threshold && ov < gateFloorNS && nv < gateFloorNS:
			flag = "  (sub-µs, not gated)"
		case delta > threshold:
			flag = "  REGRESSION"
			regressions++
		case delta < -threshold:
			flag = "  improved"
		}
		fmt.Fprintf(w, "%-34s %14.0f %14.0f %+7.1f%%%s%s\n", ne.Name, ov, nv, delta, allocCells, flag)
	}
	for _, ne := range new.Benchmarks {
		if _, ok := oldBy[ne.Name]; !ok {
			fmt.Fprintf(w, "%-34s %14s %14.0f %8s\n", ne.Name, "-", ne.Metrics["ns/op"], "added")
		}
	}
	for _, oe := range old.Benchmarks {
		if _, ok := newBy[oe.Name]; !ok {
			fmt.Fprintf(w, "%-34s %14.0f %14s %8s\n", oe.Name, oe.Metrics["ns/op"], "-", "removed")
		}
	}
	shuffleTable(w, oldBy, new)
	kernelTable(w, oldBy, new)
	return regressions
}

// allocColumns renders the old/new allocs/op cells plus their delta for
// one compare row; "-" where a baseline predates -benchmem.
func allocColumns(oe, ne entry) string {
	oa, okO := oe.Metrics["allocs/op"]
	na, okN := ne.Metrics["allocs/op"]
	oldCell, newCell, deltaCell := "-", "-", "-"
	if okO {
		oldCell = strconv.FormatFloat(oa, 'f', 0, 64)
	}
	if okN {
		newCell = strconv.FormatFloat(na, 'f', 0, 64)
	}
	if okO && okN && oa > 0 {
		deltaCell = fmt.Sprintf("%+.1f%%", (na-oa)/oa*100)
	}
	return fmt.Sprintf(" %12s %12s %8s", oldCell, newCell, deltaCell)
}

// kernelTable prints the per-kernel-family dispatch counts of every
// benchmark that reports them (the columnar reduce kernels emit sweep/op,
// merge/op and generic/op custom metrics), with the old baseline's counts
// alongside when it recorded them.
func kernelTable(w io.Writer, oldBy map[string]entry, new baseline) {
	header := false
	cell := func(e entry, unit string, ok bool) string {
		if !ok {
			return "-"
		}
		v, has := e.Metrics[unit]
		if !has {
			return "-"
		}
		return strconv.FormatFloat(v, 'f', 0, 64)
	}
	for _, ne := range new.Benchmarks {
		_, okS := ne.Metrics["sweep/op"]
		_, okM := ne.Metrics["merge/op"]
		_, okG := ne.Metrics["generic/op"]
		if !okS && !okM && !okG {
			continue
		}
		if !header {
			fmt.Fprintf(w, "\n%-34s %10s %10s %11s %24s\n",
				"kernel dispatch", "sweep/op", "merge/op", "generic/op", "old (sweep/merge/gen)")
			header = true
		}
		oe, okOld := oldBy[ne.Name]
		fmt.Fprintf(w, "%-34s %10s %10s %11s %24s\n", ne.Name,
			cell(ne, "sweep/op", true), cell(ne, "merge/op", true), cell(ne, "generic/op", true),
			cell(oe, "sweep/op", okOld)+"/"+cell(oe, "merge/op", okOld)+"/"+cell(oe, "generic/op", okOld))
	}
}

// shuffleTable prints the logical vs physical shuffle volume of every
// benchmark that reports both (the engine's range-coalesced shuffle emits
// them as logicalB/op and physB/op custom metrics), with the physical bytes
// of the old baseline alongside when it recorded them.
func shuffleTable(w io.Writer, oldBy map[string]entry, new baseline) {
	header := false
	for _, ne := range new.Benchmarks {
		logical, okL := ne.Metrics["logicalB/op"]
		phys, okP := ne.Metrics["physB/op"]
		if !okL || !okP || phys == 0 {
			continue
		}
		if !header {
			fmt.Fprintf(w, "\n%-34s %14s %14s %14s %8s\n",
				"shuffle volume", "logicalB/op", "old physB/op", "new physB/op", "repl")
			header = true
		}
		oldPhys := "-"
		if oe, ok := oldBy[ne.Name]; ok {
			if v, ok := oe.Metrics["physB/op"]; ok && v > 0 {
				oldPhys = strconv.FormatFloat(v, 'f', 0, 64)
			}
		}
		fmt.Fprintf(w, "%-34s %14.0f %14s %14.0f %7.1fx\n",
			ne.Name, logical, oldPhys, phys, logical/phys)
	}
}

// skewTable prints the reducer-balance statistics of one or two
// metrics.json reports: per-reducer pair and wall-clock max/mean with the
// imbalance ratios (max/mean; 1.0 is perfectly balanced). With two
// reports the first is the old baseline and deltas are shown. The pair
// imbalance is deterministic for a fixed input and plan; the wall
// imbalance moves with scheduler and GC noise, so it is reported but the
// gate (gateSkew) reads the pair column.
func skewTable(w io.Writer, reports []*obs.Report) error {
	old, cur := (*obs.Report)(nil), reports[len(reports)-1]
	if len(reports) == 2 {
		old = reports[0]
	}
	if cur.Skew == nil {
		return fmt.Errorf("-skew: %s report has no skew section", cur.Name)
	}
	fmt.Fprintf(w, "\nreducer balance (%s)\n", cur.Name)
	fmt.Fprintf(w, "%-22s %14s %14s %8s\n", "stat", "old", "new", "delta")
	row := func(name string, oldV, newV float64, ok bool) {
		oldCell, deltaCell := "-", "-"
		if ok {
			oldCell = fmt.Sprintf("%.2f", oldV)
			if oldV != 0 {
				deltaCell = fmt.Sprintf("%+.1f%%", (newV-oldV)/oldV*100)
			}
		}
		fmt.Fprintf(w, "%-22s %14s %14.2f %8s\n", name, oldCell, newV, deltaCell)
	}
	oldSkew, hasOld := (*obs.SkewReport)(nil), false
	if old != nil && old.Skew != nil {
		oldSkew, hasOld = old.Skew, true
	}
	get := func(f func(*obs.SkewReport) float64) (float64, float64) {
		if hasOld {
			return f(oldSkew), f(cur.Skew)
		}
		return 0, f(cur.Skew)
	}
	o, n := get(func(s *obs.SkewReport) float64 { return float64(s.Reducers) })
	row("reducers", o, n, hasOld)
	o, n = get(func(s *obs.SkewReport) float64 { return float64(s.MaxPairs) })
	row("max pairs", o, n, hasOld)
	o, n = get(func(s *obs.SkewReport) float64 { return s.MeanPairs })
	row("mean pairs", o, n, hasOld)
	o, n = get(func(s *obs.SkewReport) float64 { return s.Imbalance })
	row("pair imbalance", o, n, hasOld)
	o, n = get(func(s *obs.SkewReport) float64 { return float64(s.MaxTimeNS) / 1e6 })
	row("max reducer wall ms", o, n, hasOld)
	o, n = get(func(s *obs.SkewReport) float64 { return s.MeanTimeNS / 1e6 })
	row("mean reducer wall ms", o, n, hasOld)
	o, n = get(func(s *obs.SkewReport) float64 { return s.TimeImbalance })
	row("wall imbalance", o, n, hasOld)
	return nil
}

// gateSkew checks the newest report's pair imbalance against an absolute
// ceiling (the checked-in skew budget), returning 1 and printing the
// verdict when it is exceeded. Unlike gatePhase this is not a relative
// delta: the skew-aware executor promises max/mean within the ceiling on
// the heavy-tail scenario, so drifting baselines must not loosen it.
func gateSkew(w io.Writer, reports []*obs.Report, ceiling float64) int {
	cur := reports[len(reports)-1]
	imb := cur.Skew.Imbalance
	if imb > ceiling {
		fmt.Fprintf(w, "reducer pair imbalance %.3f exceeds the %.2f ceiling\n", imb, ceiling)
		return 1
	}
	fmt.Fprintf(w, "reducer pair imbalance %.3f within the %.2f ceiling\n", imb, ceiling)
	return 0
}

// cacheTable prints the semantic-cache statistics of one or two
// metrics.json reports written by `ijoind -bench -metrics`: the span hit
// ratio (fraction of requested window span served from cached segments),
// query classification, row provenance, LRU pressure and the warm/cold
// latency pair. With two reports the first is the old baseline and deltas
// are shown.
func cacheTable(w io.Writer, reports []*obs.Report) error {
	old, cur := (*obs.Report)(nil), reports[len(reports)-1]
	if len(reports) == 2 {
		old = reports[0]
	}
	if cur.Cache == nil {
		return fmt.Errorf("-cache: %s report has no cache section", cur.Name)
	}
	fmt.Fprintf(w, "\nsemantic cache (%s)\n", cur.Name)
	fmt.Fprintf(w, "%-22s %14s %14s %8s\n", "stat", "old", "new", "delta")
	oldCache, hasOld := (*obs.CacheReport)(nil), false
	if old != nil && old.Cache != nil {
		oldCache, hasOld = old.Cache, true
	}
	row := func(name string, f func(*obs.CacheReport) float64) {
		newV := f(cur.Cache)
		oldCell, deltaCell := "-", "-"
		if hasOld {
			oldV := f(oldCache)
			oldCell = fmt.Sprintf("%.2f", oldV)
			if oldV != 0 {
				deltaCell = fmt.Sprintf("%+.1f%%", (newV-oldV)/oldV*100)
			}
		}
		fmt.Fprintf(w, "%-22s %14s %14.2f %8s\n", name, oldCell, newV, deltaCell)
	}
	row("queries", func(c *obs.CacheReport) float64 { return float64(c.Lookups) })
	row("hit ratio (span)", func(c *obs.CacheReport) float64 { return c.HitRatio })
	row("full hits", func(c *obs.CacheReport) float64 { return float64(c.FullHits) })
	row("partial hits", func(c *obs.CacheReport) float64 { return float64(c.PartialHits) })
	row("misses", func(c *obs.CacheReport) float64 { return float64(c.Misses) })
	row("hit segments", func(c *obs.CacheReport) float64 { return float64(c.HitSegments) })
	row("cached rows", func(c *obs.CacheReport) float64 { return float64(c.CachedRows) })
	row("delta rows", func(c *obs.CacheReport) float64 { return float64(c.DeltaRows) })
	row("evictions", func(c *obs.CacheReport) float64 { return float64(c.Evictions) })
	row("bytes in use (KB)", func(c *obs.CacheReport) float64 { return float64(c.BytesInUse) / 1024 })
	if cur.Cache.ColdNS > 0 {
		row("cold mean ms", func(c *obs.CacheReport) float64 { return float64(c.ColdNS) / 1e6 })
		row("warm mean ms", func(c *obs.CacheReport) float64 { return float64(c.WarmNS) / 1e6 })
		row("speedup (cold/warm)", func(c *obs.CacheReport) float64 { return c.Speedup })
	}
	return nil
}

// gateCache checks the newest report's span hit ratio against an absolute
// floor (the checked-in cache budget), returning 1 and printing the
// verdict when it is undercut. Like gateSkew this is absolute, not a
// relative delta: the segment cache promises to serve at least the floor
// fraction of the zipfian mix's window span, so drifting baselines must
// not loosen it.
func gateCache(w io.Writer, reports []*obs.Report, floor float64) int {
	cur := reports[len(reports)-1]
	ratio := cur.Cache.HitRatio
	if ratio < floor {
		fmt.Fprintf(w, "cache span hit ratio %.3f below the %.2f floor\n", ratio, floor)
		return 1
	}
	fmt.Fprintf(w, "cache span hit ratio %.3f meets the %.2f floor\n", ratio, floor)
	return 0
}

// phaseOrder lists the span categories in execution order for the wall
// table.
var phaseOrder = []string{
	obs.CatFeed, obs.CatMap, obs.CatCombine, obs.CatSpill, obs.CatMerge,
	obs.CatReduce, obs.CatOutput, obs.CatBarrier, obs.CatCycle, obs.CatChain,
}

// phaseTable prints the per-phase wall breakdown of one or two metrics.json
// reports. With two, the first is the old baseline and deltas are shown.
func phaseTable(w io.Writer, reports []*obs.Report) {
	old, cur := (*obs.Report)(nil), reports[len(reports)-1]
	if len(reports) == 2 {
		old = reports[0]
	}
	fmt.Fprintf(w, "\nper-phase wall clock (%s)\n", cur.Name)
	if old != nil {
		fmt.Fprintf(w, "%-10s %12s %12s %8s %12s %6s %6s\n",
			"phase", "old wall ms", "new wall ms", "delta", "busy ms", "par", "spans")
	} else {
		fmt.Fprintf(w, "%-10s %12s %12s %6s %6s\n", "phase", "wall ms", "busy ms", "par", "spans")
	}
	ms := func(ns int64) float64 { return float64(ns) / 1e6 }
	for _, cat := range phaseOrder {
		ps, ok := cur.Phases[cat]
		if !ok {
			continue
		}
		par := 0.0
		if ps.WallNS > 0 {
			par = float64(ps.BusyNS) / float64(ps.WallNS)
		}
		if old != nil {
			ops, hasOld := old.Phases[cat]
			oldCell, deltaCell := "-", "-"
			if hasOld {
				oldCell = fmt.Sprintf("%.2f", ms(ops.WallNS))
				if ops.WallNS > 0 {
					deltaCell = fmt.Sprintf("%+.1f%%", float64(ps.WallNS-ops.WallNS)/float64(ops.WallNS)*100)
				}
			}
			fmt.Fprintf(w, "%-10s %12s %12.2f %8s %12.2f %6.1f %6d\n",
				cat, oldCell, ms(ps.WallNS), deltaCell, ms(ps.BusyNS), par, ps.Spans)
		} else {
			fmt.Fprintf(w, "%-10s %12.2f %12.2f %6.1f %6d\n", cat, ms(ps.WallNS), ms(ps.BusyNS), par, ps.Spans)
		}
	}
	if m := cur.Model; m != nil {
		fmt.Fprintf(w, "serialized model: total %.2f ms over %d cycle(s)", ms(m.TotalNS), m.Cycles)
		if m.PipelineNS > 0 {
			fmt.Fprintf(w, "; pipelined wall %.2f ms (overlap saved %.2f ms)", ms(m.PipelineNS), ms(m.OverlapSavedNS))
		}
		fmt.Fprintln(w)
	}
}

// gatePhase checks one phase's wall-clock delta between two reports
// against threshold percent, returning 1 (and printing the verdict) on a
// regression beyond it. A phase absent from either report is an error:
// a gate that silently passes because the run stopped emitting the phase
// would hide exactly the regressions it exists to catch.
func gatePhase(w io.Writer, reports []*obs.Report, cat string, threshold float64) (int, error) {
	if len(reports) != 2 {
		return 0, fmt.Errorf("-phasegate wants -phases old.json,new.json (two files)")
	}
	ops, okO := reports[0].Phases[cat]
	nps, okN := reports[1].Phases[cat]
	if !okO || !okN {
		return 0, fmt.Errorf("-phasegate %s: phase missing from %s report", cat,
			map[bool]string{true: "new", false: "old"}[okO])
	}
	if ops.WallNS <= 0 {
		return 0, fmt.Errorf("-phasegate %s: old report has zero wall", cat)
	}
	delta := float64(nps.WallNS-ops.WallNS) / float64(ops.WallNS) * 100
	if delta > threshold {
		fmt.Fprintf(w, "phase %s wall regressed %+.1f%% (%.2f ms -> %.2f ms), beyond %.0f%%\n",
			cat, delta, float64(ops.WallNS)/1e6, float64(nps.WallNS)/1e6, threshold)
		return 1, nil
	}
	fmt.Fprintf(w, "phase %s wall %+.1f%% (%.2f ms -> %.2f ms), within %.0f%%\n",
		cat, delta, float64(ops.WallNS)/1e6, float64(nps.WallNS)/1e6, threshold)
	return 0, nil
}

// loadReports loads the comma-separated metrics.json paths (1 or 2).
func loadReports(arg string) ([]*obs.Report, error) {
	paths := strings.Split(arg, ",")
	if len(paths) > 2 {
		return nil, fmt.Errorf("-phases wants one metrics.json or old,new — got %d paths", len(paths))
	}
	reports := make([]*obs.Report, 0, len(paths))
	for _, p := range paths {
		r, err := obs.LoadReport(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		reports = append(reports, r)
	}
	return reports, nil
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	note := flag.String("note", "benchmark baseline produced by scripts/bench.sh", "note field")
	cmp := flag.Bool("compare", false, "compare two baseline files given as arguments instead of reading stdin")
	threshold := flag.Float64("threshold", 15, "percent ns/op delta that counts as a regression or improvement")
	failOnRegress := flag.Bool("fail", false, "with -compare, exit non-zero if any benchmark regressed beyond the threshold")
	phases := flag.String("phases", "", "metrics.json file (or old,new pair) whose per-phase wall table to print")
	phasegate := flag.String("phasegate", "", "with a two-file -phases, gate this phase's wall-clock delta (e.g. reduce)")
	skew := flag.String("skew", "", "metrics.json file (or old,new pair) whose reducer-balance table to print")
	skewgate := flag.Float64("skewgate", 0, "with -skew, fail if the new report's reducer pair imbalance exceeds this absolute ceiling")
	cacheArg := flag.String("cache", "", "metrics.json file (or old,new pair) whose semantic-cache table to print")
	cachegate := flag.Float64("cachegate", 0, "with -cache, fail if the new report's span hit ratio falls below this absolute floor")
	serveStats := flag.String("serve-stats", "", "scraped /metrics text file (ijoind) whose service health table to print")
	flag.Parse()

	if *serveStats != "" {
		if err := serveStatsTable(os.Stdout, *serveStats); err != nil {
			fmt.Fprintln(os.Stderr, "benchsummary:", err)
			os.Exit(1)
		}
		return
	}

	if *cmp {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchsummary: -compare wants exactly two baseline files")
			os.Exit(2)
		}
		oldB, err := loadBaseline(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsummary:", err)
			os.Exit(1)
		}
		newB, err := loadBaseline(flag.Arg(1))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsummary:", err)
			os.Exit(1)
		}
		n := compare(os.Stdout, oldB, newB, *threshold)
		if *phases != "" {
			reports, err := loadReports(*phases)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchsummary:", err)
				os.Exit(1)
			}
			phaseTable(os.Stdout, reports)
			if *phasegate != "" {
				g, err := gatePhase(os.Stdout, reports, *phasegate, *threshold)
				if err != nil {
					fmt.Fprintln(os.Stderr, "benchsummary:", err)
					os.Exit(1)
				}
				n += g
			}
		} else if *phasegate != "" {
			fmt.Fprintln(os.Stderr, "benchsummary: -phasegate needs -phases old.json,new.json")
			os.Exit(2)
		}
		if *skew != "" {
			reports, err := loadReports(*skew)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchsummary:", err)
				os.Exit(1)
			}
			if err := skewTable(os.Stdout, reports); err != nil {
				fmt.Fprintln(os.Stderr, "benchsummary:", err)
				os.Exit(1)
			}
			if *skewgate > 0 {
				n += gateSkew(os.Stdout, reports, *skewgate)
			}
		}
		if *cacheArg != "" {
			reports, err := loadReports(*cacheArg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchsummary:", err)
				os.Exit(1)
			}
			if err := cacheTable(os.Stdout, reports); err != nil {
				fmt.Fprintln(os.Stderr, "benchsummary:", err)
				os.Exit(1)
			}
			if *cachegate > 0 {
				n += gateCache(os.Stdout, reports, *cachegate)
			}
		}
		if n > 0 {
			fmt.Printf("%d regression(s) beyond %.0f%%\n", n, *threshold)
			if *failOnRegress {
				os.Exit(1)
			}
		}
		return
	}

	if *phases != "" || *skew != "" || *cacheArg != "" {
		fails := 0
		if *phases != "" {
			reports, err := loadReports(*phases)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchsummary:", err)
				os.Exit(1)
			}
			phaseTable(os.Stdout, reports)
			if *phasegate != "" {
				g, err := gatePhase(os.Stdout, reports, *phasegate, *threshold)
				if err != nil {
					fmt.Fprintln(os.Stderr, "benchsummary:", err)
					os.Exit(1)
				}
				fails += g
			}
		}
		if *skew != "" {
			reports, err := loadReports(*skew)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchsummary:", err)
				os.Exit(1)
			}
			if err := skewTable(os.Stdout, reports); err != nil {
				fmt.Fprintln(os.Stderr, "benchsummary:", err)
				os.Exit(1)
			}
			if *skewgate > 0 {
				fails += gateSkew(os.Stdout, reports, *skewgate)
			}
		}
		if *cacheArg != "" {
			reports, err := loadReports(*cacheArg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchsummary:", err)
				os.Exit(1)
			}
			if err := cacheTable(os.Stdout, reports); err != nil {
				fmt.Fprintln(os.Stderr, "benchsummary:", err)
				os.Exit(1)
			}
			if *cachegate > 0 {
				fails += gateCache(os.Stdout, reports, *cachegate)
			}
		}
		if fails > 0 && *failOnRegress {
			os.Exit(1)
		}
		return
	}
	if *phasegate != "" {
		fmt.Fprintln(os.Stderr, "benchsummary: -phasegate needs -phases old.json,new.json")
		os.Exit(2)
	}

	byName := make(map[string][]sample)
	var order []string
	var cpu, pkg string
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			cpu = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		default:
			if name, s, ok := parseLine(line); ok {
				s.pkg = pkg
				if _, seen := byName[name]; !seen {
					order = append(order, name)
				}
				byName[name] = append(byName[name], s)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchsummary:", err)
		os.Exit(1)
	}
	if len(order) == 0 {
		fmt.Fprintln(os.Stderr, "benchsummary: no benchmark lines on stdin")
		os.Exit(1)
	}

	b := baseline{
		Note:      *note,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPU:       cpu,
	}
	for _, name := range order {
		samples := byName[name]
		units := make(map[string][]float64)
		var iters int64
		for _, s := range samples {
			iters = s.iterations
			for u, v := range s.metrics {
				units[u] = append(units[u], v)
			}
		}
		med := make(map[string]float64, len(units))
		for u, vals := range units {
			med[u] = median(vals)
		}
		b.Benchmarks = append(b.Benchmarks, entry{
			Name:       name,
			Package:    samples[0].pkg,
			Runs:       len(samples),
			Iterations: iters,
			Metrics:    med,
		})
	}

	enc, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsummary:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchsummary:", err)
		os.Exit(1)
	}
}
