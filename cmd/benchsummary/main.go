// Command benchsummary condenses `go test -bench` output into a small JSON
// baseline file (benchstat-style medians across -count repetitions).
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem -count 3 ./... | benchsummary -o BENCH_1.json
//
// Each benchmark's metrics (ns/op, B/op, allocs/op and any custom
// ReportMetric units such as pairs/op) are reduced to the median across
// repetitions, which is what makes the file stable enough to check in and
// diff on a noisy single-core machine.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// sample is one parsed benchmark line.
type sample struct {
	pkg        string
	iterations int64
	metrics    map[string]float64 // unit -> value, e.g. "ns/op" -> 840123
}

// entry is one benchmark's reduced record in the output file.
type entry struct {
	Name       string             `json:"name"`
	Package    string             `json:"package"`
	Runs       int                `json:"runs"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type baseline struct {
	Note       string  `json:"note"`
	GoVersion  string  `json:"go_version"`
	GOOS       string  `json:"goos"`
	GOARCH     string  `json:"goarch"`
	CPU        string  `json:"cpu,omitempty"`
	Benchmarks []entry `json:"benchmarks"`
}

func median(vals []float64) float64 {
	sort.Float64s(vals)
	n := len(vals)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return vals[n/2]
	}
	return (vals[n/2-1] + vals[n/2]) / 2
}

// parseLine parses "BenchmarkX-4   100   840 ns/op   32 B/op   1 allocs/op".
func parseLine(line string) (name string, s sample, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", sample{}, false
	}
	// Strip the -GOMAXPROCS suffix so counts on different machines compare.
	name = fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", sample{}, false
	}
	s = sample{iterations: iters, metrics: make(map[string]float64)}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", sample{}, false
		}
		s.metrics[fields[i+1]] = v
	}
	return name, s, len(s.metrics) > 0
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	note := flag.String("note", "benchmark baseline produced by scripts/bench.sh", "note field")
	flag.Parse()

	byName := make(map[string][]sample)
	var order []string
	var cpu, pkg string
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			cpu = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		default:
			if name, s, ok := parseLine(line); ok {
				s.pkg = pkg
				if _, seen := byName[name]; !seen {
					order = append(order, name)
				}
				byName[name] = append(byName[name], s)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchsummary:", err)
		os.Exit(1)
	}
	if len(order) == 0 {
		fmt.Fprintln(os.Stderr, "benchsummary: no benchmark lines on stdin")
		os.Exit(1)
	}

	b := baseline{
		Note:      *note,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPU:       cpu,
	}
	for _, name := range order {
		samples := byName[name]
		units := make(map[string][]float64)
		var iters int64
		for _, s := range samples {
			iters = s.iterations
			for u, v := range s.metrics {
				units[u] = append(units[u], v)
			}
		}
		med := make(map[string]float64, len(units))
		for u, vals := range units {
			med[u] = median(vals)
		}
		b.Benchmarks = append(b.Benchmarks, entry{
			Name:       name,
			Package:    samples[0].pkg,
			Runs:       len(samples),
			Iterations: iters,
			Metrics:    med,
		})
	}

	enc, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsummary:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchsummary:", err)
		os.Exit(1)
	}
}
