package main

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"text/tabwriter"

	"intervaljoin/internal/obs/live"
)

// serveStatsTable renders a scraped /metrics snapshot (the Prometheus
// text file ijoind -selfcheck or `curl /metrics` writes) as the service
// health table: latency quantiles recovered from the cumulative
// histogram buckets, requests by status code, cache hit ratio, and the
// admission-control counters.
func serveStatsTable(w io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	samples, err := live.Parse(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}

	value := func(name string) (float64, bool) {
		for _, s := range samples {
			if s.Name == name {
				return s.Value, true
			}
		}
		return 0, false
	}

	// Reassemble the latency histogram from its _bucket series.
	type bucket struct{ le, cum float64 }
	var buckets []bucket
	for _, s := range samples {
		if s.Name != "ij_query_latency_seconds_bucket" {
			continue
		}
		le, err := parseLE(s.Label("le"))
		if err != nil {
			return fmt.Errorf("%s: bad le %q: %w", path, s.Label("le"), err)
		}
		buckets = append(buckets, bucket{le: le, cum: s.Value})
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	count, _ := value("ij_query_latency_seconds_count")
	sum, _ := value("ij_query_latency_seconds_sum")

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "service stats from %s\n", path)
	fmt.Fprintf(tw, "queries\t%d\n", int64(count))
	if count > 0 {
		les := make([]float64, len(buckets))
		cums := make([]float64, len(buckets))
		for i, b := range buckets {
			les[i], cums[i] = b.le, b.cum
		}
		fmt.Fprintf(tw, "latency mean\t%s\n", fmtSeconds(sum/count))
		for _, q := range []struct {
			name string
			q    float64
		}{{"p50", 0.50}, {"p95", 0.95}, {"p99", 0.99}} {
			fmt.Fprintf(tw, "latency %s\t%s\n", q.name, fmtSeconds(live.CumulativeQuantile(les, cums, count, q.q)))
		}
	}
	type codeCount struct {
		code string
		n    float64
	}
	var codes []codeCount
	for _, s := range samples {
		if s.Name == "ij_requests_total" && s.Value > 0 {
			codes = append(codes, codeCount{code: s.Label("code"), n: s.Value})
		}
	}
	sort.Slice(codes, func(i, j int) bool { return codes[i].code < codes[j].code })
	for _, c := range codes {
		fmt.Fprintf(tw, "requests %s\t%d\n", c.code, int64(c.n))
	}
	for _, row := range []struct {
		label, metric string
		ratio         bool
	}{
		{"cache hit ratio", "ij_cache_hit_ratio", true},
		{"admission rejected", "ij_admission_rejected_total", false},
		{"in flight", "ij_inflight", false},
		{"slow queries", "ij_slow_queries_total", false},
		{"engine runs", "ij_engine_runs_total", false},
		{"traces written", "ij_query_traces_written_total", false},
	} {
		v, ok := value(row.metric)
		if !ok {
			continue
		}
		if row.ratio {
			fmt.Fprintf(tw, "%s\t%.3f\n", row.label, v)
		} else {
			fmt.Fprintf(tw, "%s\t%d\n", row.label, int64(v))
		}
	}
	return tw.Flush()
}

// parseLE decodes a histogram bucket bound, accepting the +Inf spelling.
func parseLE(s string) (float64, error) {
	if s == "+Inf" {
		return strconv.ParseFloat("Inf", 64)
	}
	return strconv.ParseFloat(s, 64)
}

// fmtSeconds prints a duration-in-seconds at a readable scale.
func fmtSeconds(s float64) string {
	switch {
	case s < 0.001:
		return fmt.Sprintf("%.0fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.2fms", s*1e3)
	default:
		return fmt.Sprintf("%.3fs", s)
	}
}
