// Command ijoin runs a multi-way interval join query over text interval
// files on the built-in MapReduce engine.
//
// Usage:
//
//	ijoin -query "R1 overlaps R2 and R2 overlaps R3" \
//	      -rel R1=a.txt -rel R2=b.txt -rel R3=c.txt \
//	      [-algorithm rccis] [-partitions 16|auto] [-per-dim 6] \
//	      [-adaptive] [-resplit N] \
//	      [-data-dir /tmp/ij] [-o out.txt] [-stats] [-materialize] \
//	      [-trace trace.json] [-metrics metrics.json]
//
// Input files hold one tuple per line; each attribute is "start,end" and
// attributes are separated by '|'. A self-join registers the same file
// under several relation names. With no -algorithm the paper's recommended
// algorithm for the query's class is used. The output holds one line per
// result: the joined tuples' line numbers (0-based), comma-separated in
// query relation order.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"intervaljoin"
)

type relArg struct {
	name, path string
}

func main() {
	var (
		queryStr   = flag.String("query", "", "join query, e.g. \"R1 overlaps R2 and R2 before R3\"")
		algorithm  = flag.String("algorithm", "", "algorithm (default: planner choice); see -list-algorithms")
		advise     = flag.Bool("advise", false, "print the cost model's algorithm ranking instead of running")
		partFlag   = flag.String("partitions", "16", "partitions for 1-D algorithms, or 'auto' to let the cost model choose")
		perDim     = flag.Int("per-dim", 6, "partitions per grid dimension for matrix algorithms")
		workers    = flag.Int("workers", 0, "engine parallelism (0 = GOMAXPROCS)")
		equiDepth  = flag.Bool("equi-depth", false, "derive partition boundaries from start-point quantiles (for skewed data)")
		adaptive   = flag.Bool("adaptive", false, "skew-aware execution: histogram-driven boundaries plus virtual splitting of hot partitions")
		maxVirtual = flag.Int("max-virtual", 0, "with -adaptive, cap on virtual reducers per split partition (0 = default 8)")
		resplitAt  = flag.Int("resplit", 0, "re-split a reduce task over spare workers once its value list reaches N (0 = off)")
		material   = flag.Bool("materialize", false, "write every MR cycle boundary to the store instead of streaming it (Hadoop parity)")
		dataDir    = flag.String("data-dir", "", "spill intermediates to this directory instead of RAM")
		oPath      = flag.String("o", "-", "output file ('-' = stdout)")
		emit       = flag.String("emit", "ids", "output format: ids (line numbers) | tuples (full interval values)")
		showStats  = flag.Bool("stats", false, "print run metrics to stderr")
		tracePath  = flag.String("trace", "", "write a Chrome trace_event JSON timeline here (open in Perfetto)")
		metricsOut = flag.String("metrics", "", "write the machine-readable metrics.json report here")
		pprofTags  = flag.Bool("pprof-labels", false, "attach pprof labels (algorithm, cycle) to reduce tasks; needs -trace or -metrics")
		listAlgos  = flag.Bool("list-algorithms", false, "list algorithm names and exit")
	)
	var rels []relArg
	flag.Func("rel", "relation binding name=file (repeatable)", func(s string) error {
		eq := strings.IndexByte(s, '=')
		if eq <= 0 || eq == len(s)-1 {
			return fmt.Errorf("want name=file, got %q", s)
		}
		rels = append(rels, relArg{name: s[:eq], path: s[eq+1:]})
		return nil
	})
	flag.Parse()

	if *listAlgos {
		for _, n := range intervaljoin.AlgorithmNames() {
			fmt.Println(n)
		}
		return
	}
	if *queryStr == "" {
		fatal(fmt.Errorf("missing -query"))
	}
	q, err := intervaljoin.ParseQuery(*queryStr)
	if err != nil {
		fatal(err)
	}
	if intervaljoin.ProvablyEmpty(q) {
		fmt.Fprintln(os.Stderr, "ijoin: query is provably empty (contradictory Allen conditions); nothing to run")
		return
	}
	if len(rels) != len(q.Relations) {
		fatal(fmt.Errorf("query references %d relations, %d -rel bindings given", len(q.Relations), len(rels)))
	}

	bound := make([]*intervaljoin.Relation, 0, len(rels))
	for _, ra := range rels {
		ri := q.RelIndex(ra.name)
		if ri < 0 {
			fatal(fmt.Errorf("relation %s does not appear in the query", ra.name))
		}
		rel, err := intervaljoin.LoadRelation(q.Relations[ri], ra.path)
		if err != nil {
			fatal(err)
		}
		bound = append(bound, rel)
	}

	partitions, autoK := 0, false
	if *partFlag == "auto" {
		partitions = intervaljoin.AdvisePartitions(bound, nil)
		autoK = true
		fmt.Fprintf(os.Stderr, "ijoin: -partitions auto chose k=%d\n", partitions)
	} else {
		k, err := strconv.Atoi(*partFlag)
		if err != nil || k <= 0 {
			fatal(fmt.Errorf("-partitions wants a positive count or 'auto', got %q", *partFlag))
		}
		partitions = k
	}

	if *advise {
		ests, err := intervaljoin.Advise(q, bound, partitions, *perDim)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-16s %14s %14s %7s\n", "algorithm", "est_pairs", "est_max_load", "cycles")
		for _, e := range ests {
			fmt.Printf("%-16s %14.0f %14.0f %7d\n", e.Algorithm, e.Pairs, e.MaxReducerLoad, e.Cycles)
		}
		if intervaljoin.RecommendEquiDepth(bound, partitions) {
			fmt.Println("note: skewed start points detected — consider equi-depth partitioning (RunOptions.EquiDepth)")
		}
		return
	}

	var tracer *intervaljoin.Tracer
	if *tracePath != "" || *metricsOut != "" {
		tracer = intervaljoin.NewTracer(intervaljoin.TracerOptions{PprofLabels: *pprofTags})
	}
	eng, err := intervaljoin.NewEngine(intervaljoin.EngineOptions{
		Workers:              *workers,
		DataDir:              *dataDir,
		Tracer:               tracer,
		ResplitPairThreshold: *resplitAt,
	})
	if err != nil {
		fatal(err)
	}
	opts := intervaljoin.RunOptions{
		Partitions:       partitions,
		PartitionsPerDim: *perDim,
		EquiDepth:        *equiDepth,
		Adaptive:         *adaptive,
		MaxVirtual:       *maxVirtual,
		AutoPartitions:   autoK,
		Materialize:      *material,
	}

	var res *intervaljoin.Result
	if *algorithm == "" {
		res, err = eng.Run(q, bound, opts)
	} else {
		alg, algErr := intervaljoin.AlgorithmByName(*algorithm)
		if algErr != nil {
			fatal(algErr)
		}
		res, err = eng.RunWith(alg, q, bound, opts)
	}
	if err != nil {
		fatal(err)
	}

	var out io.Writer = os.Stdout
	if *oPath != "-" {
		f, err := os.Create(*oPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}
	w := bufio.NewWriter(out)
	switch *emit {
	case "ids":
		for _, t := range res.Tuples {
			fmt.Fprintln(w, t.Key())
		}
	case "tuples":
		// Bound relations in query order, so ids resolve positionally.
		byQuery := make([]*intervaljoin.Relation, len(q.Relations))
		for _, rel := range bound {
			byQuery[q.RelIndex(rel.Schema.Name)] = rel
		}
		for _, t := range res.Tuples {
			for ri, id := range t {
				if ri > 0 {
					fmt.Fprint(w, "  ")
				}
				tup := byQuery[ri].Tuples[id]
				fmt.Fprintf(w, "%s[%d]=", q.Relations[ri].Name, id)
				for ai, iv := range tup.Attrs {
					if ai > 0 {
						fmt.Fprint(w, "|")
					}
					fmt.Fprint(w, iv)
				}
			}
			fmt.Fprintln(w)
		}
	default:
		fatal(fmt.Errorf("unknown -emit %q (want ids or tuples)", *emit))
	}
	if err := w.Flush(); err != nil {
		fatal(err)
	}
	if *showStats {
		fmt.Fprintf(os.Stderr, "algorithm=%s tuples=%d %s replicated=%d\n",
			res.Algorithm, len(res.Tuples), res.Metrics, res.ReplicatedIntervals)
	}
	if *tracePath != "" {
		if err := writeFileWith(*tracePath, eng.WriteTrace); err != nil {
			fatal(err)
		}
	}
	if *metricsOut != "" {
		if err := writeFileWith(*metricsOut, func(w io.Writer) error { return eng.WriteMetrics(w, res) }); err != nil {
			fatal(err)
		}
	}
}

// writeFileWith creates path and streams fn's output into it.
func writeFileWith(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ijoin:", err)
	os.Exit(1)
}
