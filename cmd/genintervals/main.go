// Command genintervals generates synthetic interval datasets with the
// paper's workload parameters and writes them as text files consumable by
// the ijoin command (one "start,end" interval per line; multi-attribute
// rows separate attributes with '|').
//
// Usage:
//
//	genintervals -n 100000 -ds uniform -di uniform \
//	             -tmin 0 -tmax 100000 -imin 1 -imax 100 \
//	             [-seed 1] [-o intervals.txt]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"intervaljoin/internal/workload"
)

func main() {
	var (
		n     = flag.Int("n", 1000, "number of intervals (nI)")
		ds    = flag.String("ds", "uniform", "start distribution: uniform|normal|zipf|exponential (dS)")
		di    = flag.String("di", "uniform", "length distribution (dI)")
		tmin  = flag.Int64("tmin", 0, "range lower bound")
		tmax  = flag.Int64("tmax", 100_000, "range upper bound")
		imin  = flag.Int64("imin", 1, "minimum interval length")
		imax  = flag.Int64("imax", 100, "maximum interval length")
		seed  = flag.Int64("seed", 1, "generator seed")
		oPath = flag.String("o", "-", "output file ('-' = stdout)")
	)
	flag.Parse()

	startDist, err := workload.ParseDistribution(*ds)
	if err != nil {
		fatal(err)
	}
	lenDist, err := workload.ParseDistribution(*di)
	if err != nil {
		fatal(err)
	}
	rel, err := workload.Generate(workload.Spec{
		Name: "R", NumIntervals: *n,
		StartDist: startDist, LengthDist: lenDist,
		TMin: *tmin, TMax: *tmax, IMin: *imin, IMax: *imax, Seed: *seed,
	})
	if err != nil {
		fatal(err)
	}

	var out io.Writer = os.Stdout
	if *oPath != "-" {
		f, err := os.Create(*oPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}
	w := bufio.NewWriter(out)
	defer w.Flush()
	for _, iv := range rel.Intervals() {
		fmt.Fprintf(w, "%d,%d\n", iv.Start, iv.End)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "genintervals:", err)
	os.Exit(1)
}
