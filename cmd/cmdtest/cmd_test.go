// Package cmdtest builds the CLI binaries and exercises them end to end —
// the integration layer the per-package unit tests cannot cover.
package cmdtest

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// binaries are built once per test run.
var binDir string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "ijoin-bins")
	if err != nil {
		panic(err)
	}
	binDir = dir
	for _, tool := range []string{"ijoin", "genintervals", "packettrace", "experiments", "ijoind"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(dir, tool), "intervaljoin/cmd/"+tool)
		cmd.Dir = repoRoot()
		if out, err := cmd.CombinedOutput(); err != nil {
			panic("build " + tool + ": " + err.Error() + "\n" + string(out))
		}
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func repoRoot() string {
	wd, err := os.Getwd()
	if err != nil {
		panic(err)
	}
	return filepath.Dir(filepath.Dir(wd)) // cmd/cmdtest -> repo root
}

func run(t *testing.T, tool string, args ...string) (string, string, error) {
	t.Helper()
	cmd := exec.Command(filepath.Join(binDir, tool), args...)
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	return stdout.String(), stderr.String(), err
}

func mustRun(t *testing.T, tool string, args ...string) string {
	t.Helper()
	out, errOut, err := run(t, tool, args...)
	if err != nil {
		t.Fatalf("%s %v: %v\nstderr: %s", tool, args, err, errOut)
	}
	return out
}

func TestGenIntervalsAndIjoinPipeline(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.txt")
	b := filepath.Join(dir, "b.txt")
	mustRun(t, "genintervals", "-n", "200", "-tmax", "1000", "-imax", "50", "-seed", "1", "-o", a)
	mustRun(t, "genintervals", "-n", "200", "-tmax", "1000", "-imax", "50", "-seed", "2", "-o", b)

	out := mustRun(t, "ijoin",
		"-query", "R1 overlaps R2",
		"-rel", "R1="+a, "-rel", "R2="+b,
		"-partitions", "8")
	lines := nonEmptyLines(out)
	if len(lines) == 0 {
		t.Fatal("join produced no output")
	}
	for _, l := range lines {
		if !strings.Contains(l, ",") {
			t.Fatalf("malformed output line %q", l)
		}
	}

	// The same join through an explicit baseline algorithm must agree.
	out2 := mustRun(t, "ijoin",
		"-query", "R1 overlaps R2",
		"-rel", "R1="+a, "-rel", "R2="+b,
		"-algorithm", "all-rep", "-partitions", "8")
	if len(nonEmptyLines(out2)) != len(lines) {
		t.Fatalf("two-way found %d pairs, all-rep %d", len(lines), len(nonEmptyLines(out2)))
	}
}

func TestIjoinEmitTuples(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.txt")
	b := filepath.Join(dir, "b.txt")
	os.WriteFile(a, []byte("0,10\n"), 0o644)
	os.WriteFile(b, []byte("5,20\n100,110\n"), 0o644)
	out := mustRun(t, "ijoin",
		"-query", "R1 overlaps R2",
		"-rel", "R1="+a, "-rel", "R2="+b,
		"-emit", "tuples")
	lines := nonEmptyLines(out)
	if len(lines) != 1 || !strings.Contains(lines[0], "R1[0]=[0,10]") || !strings.Contains(lines[0], "R2[0]=[5,20]") {
		t.Fatalf("tuples output = %q", out)
	}
	if _, _, err := run(t, "ijoin", "-query", "R1 overlaps R2",
		"-rel", "R1="+a, "-rel", "R2="+b, "-emit", "nonsense"); err == nil {
		t.Error("unknown -emit accepted")
	}
}

func TestIjoinAdvise(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.txt")
	mustRun(t, "genintervals", "-n", "100", "-tmax", "1000", "-imax", "20", "-o", a)
	out := mustRun(t, "ijoin",
		"-query", "R1 overlaps R2 and R2 overlaps R3",
		"-rel", "R1="+a, "-rel", "R2="+a, "-rel", "R3="+a,
		"-advise")
	if !strings.Contains(out, "rccis") || !strings.Contains(out, "est_pairs") {
		t.Fatalf("advice output missing content:\n%s", out)
	}
}

func TestIjoinProvablyEmptyShortCircuits(t *testing.T) {
	_, errOut, err := run(t, "ijoin", "-query", "A before B and B before A")
	if err != nil {
		t.Fatalf("provably empty query should exit 0: %v", err)
	}
	if !strings.Contains(errOut, "provably empty") {
		t.Fatalf("stderr = %q", errOut)
	}
}

func TestIjoinErrors(t *testing.T) {
	if _, _, err := run(t, "ijoin"); err == nil {
		t.Error("missing -query accepted")
	}
	if _, _, err := run(t, "ijoin", "-query", "A sideways B"); err == nil {
		t.Error("bad predicate accepted")
	}
	if _, _, err := run(t, "ijoin", "-query", "A overlaps B", "-rel", "A=/nonexistent"); err == nil {
		t.Error("missing relation binding accepted")
	}
	out := mustRun(t, "ijoin", "-list-algorithms")
	if !strings.Contains(out, "rccis") || !strings.Contains(out, "gen-matrix") {
		t.Fatalf("algorithm list incomplete:\n%s", out)
	}
}

func TestPackettraceTrains(t *testing.T) {
	out := mustRun(t, "packettrace", "-profile", "P04", "-scale", "0.005", "-emit", "trains")
	lines := nonEmptyLines(out)
	if len(lines) < 5 {
		t.Fatalf("only %d trains", len(lines))
	}
	for _, l := range lines[:5] {
		if !strings.Contains(l, ",") {
			t.Fatalf("malformed train %q", l)
		}
	}
	out2 := mustRun(t, "packettrace", "-profile", "P04", "-scale", "0.005", "-emit", "packets")
	if len(nonEmptyLines(out2)) <= len(lines) {
		t.Fatal("packets output should exceed trains output")
	}
	if _, _, err := run(t, "packettrace", "-profile", "P99"); err == nil {
		t.Error("unknown profile accepted")
	}
	if _, _, err := run(t, "packettrace", "-emit", "nonsense"); err == nil {
		t.Error("unknown -emit accepted")
	}
}

func TestExperimentsListAndJSON(t *testing.T) {
	out := mustRun(t, "experiments", "-exp", "list")
	for _, id := range []string{"table1", "table2", "figure4", "figure5a", "figure5b", "table3", "table4"} {
		if !strings.Contains(out, id) {
			t.Fatalf("experiment %s missing from list:\n%s", id, out)
		}
	}
	jsonOut := mustRun(t, "experiments", "-exp", "figure4", "-scale", "0.0005", "-json")
	if !strings.Contains(jsonOut, `"id": "figure4"`) || !strings.Contains(jsonOut, `"rows"`) {
		t.Fatalf("JSON output malformed:\n%s", jsonOut)
	}
	if _, _, err := run(t, "experiments", "-exp", "table99"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func nonEmptyLines(s string) []string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if strings.TrimSpace(l) != "" {
			out = append(out, l)
		}
	}
	return out
}
