package cmdtest

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"intervaljoin/internal/obs/live"
)

// startIjoind launches the server on an OS-assigned port and returns its
// base URL once the listen line appears on stderr. The caller signals and
// waits via the returned command.
func startIjoind(t *testing.T, args ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(filepath.Join(binDir, "ijoind"),
		append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	// The serving line is "ijoind: serving <time> on <addr> (relations: ...)".
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, " on "); i >= 0 && strings.Contains(line, "serving") {
				rest := line[i+4:]
				if j := strings.Index(rest, " ("); j >= 0 {
					rest = rest[:j]
				}
				addrc <- rest
			}
		}
	}()
	select {
	case addr := <-addrc:
		return cmd, "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatal("ijoind did not start serving within 30s")
		return nil, ""
	}
}

// postQuery sends one windowed query and decodes the response.
func postQuery(t *testing.T, base, q string, lo, hi int64) map[string]json.RawMessage {
	t.Helper()
	body, _ := json.Marshal(map[string]any{"query": q, "lo": lo, "hi": hi})
	resp, err := http.Post(base+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /query [%d,%d]: status %d", lo, hi, resp.StatusCode)
	}
	var out map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// rowSet decodes a response's rows into the "id,id" strings batch ijoin
// prints, as a set.
func rowSet(t *testing.T, raw json.RawMessage) map[string]bool {
	t.Helper()
	var rows [][]int64
	if err := json.Unmarshal(raw, &rows); err != nil {
		t.Fatal(err)
	}
	set := make(map[string]bool, len(rows))
	for _, r := range rows {
		parts := make([]string, len(r))
		for i, id := range r {
			parts[i] = fmt.Sprintf("%d", id)
		}
		set[strings.Join(parts, ",")] = true
	}
	return set
}

// scrapeMetrics fetches /metrics, validates the exposition text, and
// returns the parsed samples.
func scrapeMetrics(t *testing.T, base string) []live.Sample {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	samples, err := live.Parse(resp.Body)
	if err != nil {
		t.Fatalf("/metrics failed validation: %v", err)
	}
	return samples
}

// sampleValue returns the first sample with the given name.
func sampleValue(samples []live.Sample, name string) (float64, bool) {
	for _, s := range samples {
		if s.Name == name {
			return s.Value, true
		}
	}
	return 0, false
}

// TestIjoindServesCachedQueries boots the server on real relation files
// with every query traced (-trace-sample 1, so the batch-equality check
// covers the traced path), issues overlapping windowed queries (so the
// second is served at least partly from the segment cache), scrapes
// /metrics mid-load, and checks the whole-range answer is exactly the
// batch ijoin output. Then it exercises graceful shutdown: SIGTERM must
// drain, flush -metrics, and exit cleanly.
func TestIjoindServesCachedQueries(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.txt")
	b := filepath.Join(dir, "b.txt")
	metrics := filepath.Join(dir, "metrics.json")
	traceDir := filepath.Join(dir, "traces")
	mustRun(t, "genintervals", "-n", "200", "-tmax", "1000", "-imax", "50", "-seed", "1", "-o", a)
	mustRun(t, "genintervals", "-n", "200", "-tmax", "1000", "-imax", "50", "-seed", "2", "-o", b)

	cmd, base := startIjoind(t, "-rel", "R1="+a, "-rel", "R2="+b, "-metrics", metrics,
		"-trace-sample", "1", "-trace-dir", traceDir)

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	const q = "R1 overlaps R2"
	postQuery(t, base, q, 0, 600)
	mid := scrapeMetrics(t, base)
	midCount, ok := sampleValue(mid, "ij_query_latency_seconds_count")
	if !ok || midCount < 1 {
		t.Fatalf("mid-load ij_query_latency_seconds_count = %v (present=%v), want >= 1", midCount, ok)
	}
	warm := postQuery(t, base, q, 300, 900)
	var hitSegs int
	if err := json.Unmarshal(warm["hit_segments"], &hitSegs); err != nil {
		t.Fatal(err)
	}
	if hitSegs == 0 {
		t.Error("overlapping window [300,900] after [0,600] hit no cached segment")
	}
	full := postQuery(t, base, q, 0, 10_000)

	// The whole-range answer — merged from cached segments plus delta
	// windows — must be exactly the batch join.
	batch := mustRun(t, "ijoin", "-query", q, "-rel", "R1="+a, "-rel", "R2="+b, "-partitions", "8")
	want := make(map[string]bool)
	for _, l := range nonEmptyLines(batch) {
		want[strings.TrimSpace(l)] = true
	}
	got := rowSet(t, full["rows"])
	if len(got) != len(want) {
		t.Fatalf("server answered %d rows, batch ijoin %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("server answer missing batch row %s", k)
		}
	}

	resp, err = http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	stats, _ := readAll(resp)
	if !strings.Contains(stats, `"cache"`) || !strings.Contains(stats, `"hit_ratio"`) {
		t.Fatalf("stats missing cache section: %s", stats)
	}

	// The final scrape must have moved past the mid-load one and carry the
	// gauge and cache-bridge series.
	fin := scrapeMetrics(t, base)
	finCount, ok := sampleValue(fin, "ij_query_latency_seconds_count")
	if !ok || finCount <= midCount {
		t.Fatalf("ij_query_latency_seconds_count did not move: mid %v, final %v", midCount, finCount)
	}
	if _, ok := sampleValue(fin, "ij_inflight"); !ok {
		t.Error("final scrape missing ij_inflight")
	}
	if ratio, ok := sampleValue(fin, "ij_cache_hit_ratio"); !ok || ratio <= 0 {
		t.Errorf("ij_cache_hit_ratio = %v (present=%v), want > 0 after overlapping windows", ratio, ok)
	}
	if traced, ok := sampleValue(fin, "ij_query_traces_written_total"); !ok || traced < 3 {
		t.Errorf("ij_query_traces_written_total = %v (present=%v), want >= 3 with -trace-sample 1", traced, ok)
	}

	// Every query was sampled: the trace ring must hold Chrome-trace JSON.
	paths, err := filepath.Glob(filepath.Join(traceDir, "query-*.trace.json"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no sampled traces in %s (err=%v)", traceDir, err)
	}
	raw, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil || len(doc.TraceEvents) == 0 {
		t.Fatalf("%s is not a Chrome trace with events (err=%v)", paths[0], err)
	}

	// Graceful shutdown: SIGTERM drains in-flight work, flushes metrics,
	// and exits 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitc := make(chan error, 1)
	go func() { waitc <- cmd.Wait() }()
	select {
	case err := <-waitc:
		if err != nil {
			t.Fatalf("ijoind exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("ijoind did not exit within 30s of SIGTERM")
	}
	data, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatalf("metrics not flushed on shutdown: %v", err)
	}
	if !strings.Contains(string(data), `"cache"`) {
		t.Fatalf("flushed metrics missing cache section: %s", data)
	}
}

func TestIjoindBenchVerifiesWarmAgainstCold(t *testing.T) {
	out, errOut, err := run(t, "ijoind", "-bench", "-queries", "12", "-rows", "1500", "-workers", "2")
	if err != nil {
		t.Fatalf("ijoind -bench: %v\nstderr: %s", err, errOut)
	}
	if !strings.Contains(out, "hit_ratio=") || !strings.Contains(out, "speedup=") {
		t.Fatalf("bench summary malformed:\n%s", out)
	}
}

func readAll(resp *http.Response) (string, error) {
	defer resp.Body.Close()
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteByte('\n')
	}
	return sb.String(), sc.Err()
}
