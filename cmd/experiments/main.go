// Command experiments regenerates the paper's tables and figures on the
// built-in MapReduce engine.
//
// Usage:
//
//	experiments [-exp table1|table2|figure4|figure5a|figure5b|table3|table4|all|list] \
//	            [-scale 0.002] [-seed 1] [-workers N] [-verify] [-materialize] \
//	            [-trace trace.json] [-metrics metrics.json]
//
// Scale multiplies the paper's dataset sizes; the default keeps every
// experiment in seconds. -verify additionally checks every algorithm's
// output against the in-memory oracle (slow).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"intervaljoin/internal/exp"
	"intervaljoin/internal/mr"
	"intervaljoin/internal/obs"
)

func main() {
	var (
		id      = flag.String("exp", "all", "experiment id, 'all', or 'list'")
		scale   = flag.Float64("scale", 0, "fraction of the paper's dataset sizes (default 0.002)")
		seed    = flag.Int64("seed", 1, "workload seed")
		workers = flag.Int("workers", 0, "engine parallelism (0 = GOMAXPROCS)")
		verify  = flag.Bool("verify", false, "cross-check every run against the oracle")

		querymix = flag.Bool("querymix", false, "shorthand for -exp querymix: the zipfian query-mix cache experiment")

		adaptive = flag.Bool("adaptive", false, "skew-aware execution: adaptive boundaries and virtual reducer splitting")
		materal  = flag.Bool("materialize", false, "materialize every MR cycle boundary instead of streaming it")
		asJSON   = flag.Bool("json", false, "emit JSON instead of aligned text")
		traceTo  = flag.String("trace", "", "write a Chrome trace_event timeline of every run here (open in Perfetto)")
		metrTo   = flag.String("metrics", "", "write the aggregate metrics.json report of every run here")
	)
	flag.Parse()

	if *querymix {
		*id = "querymix"
	}
	if *id == "list" {
		for _, e := range exp.All() {
			fmt.Printf("%-20s %s\n", e.ID, e.Title)
		}
		return
	}
	var tracer *obs.Tracer
	if *traceTo != "" || *metrTo != "" {
		tracer = obs.New(obs.Options{})
	}
	cfg := exp.Config{Scale: *scale, Seed: *seed, Workers: *workers, Verify: *verify, Adaptive: *adaptive, Materialize: *materal, Tracer: tracer}
	var exps []exp.Experiment
	if *id == "all" {
		exps = exp.All()
	} else {
		e, err := exp.ByID(*id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		exps = []exp.Experiment{e}
	}
	for _, e := range exps {
		table, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		if *asJSON {
			b, err := table.JSON()
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiment %s: %v\n", e.ID, err)
				os.Exit(1)
			}
			os.Stdout.Write(b)
			fmt.Println()
			continue
		}
		table.Render(os.Stdout)
	}
	if *traceTo != "" {
		writeFileWith(*traceTo, func(w io.Writer) error { return mr.WriteChromeTrace(w, tracer) })
	}
	if *metrTo != "" {
		writeFileWith(*metrTo, func(w io.Writer) error { return mr.WriteMetricsJSON(w, "experiments:"+*id, tracer, nil) })
	}
}

// writeFileWith creates path, streams fn's output into it, and exits on
// failure.
func writeFileWith(path string, fn func(io.Writer) error) {
	f, err := os.Create(path)
	if err == nil {
		if err = fn(f); err != nil {
			f.Close()
		} else {
			err = f.Close()
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
