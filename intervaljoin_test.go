package intervaljoin

import (
	"testing"
)

func TestPublicAPIQuickstart(t *testing.T) {
	eng := MustNewEngine(EngineOptions{Workers: 2})
	q, err := ParseQuery("R1 overlaps R2 and R2 overlaps R3")
	if err != nil {
		t.Fatal(err)
	}
	r1 := FromIntervals("R1", []Interval{NewInterval(0, 10), NewInterval(40, 50)})
	r2 := FromIntervals("R2", []Interval{NewInterval(5, 20), NewInterval(45, 60)})
	r3 := FromIntervals("R3", []Interval{NewInterval(15, 30), NewInterval(55, 70)})
	res, err := eng.Run(q, []*Relation{r1, r2, r3}, RunOptions{Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 2 {
		t.Fatalf("output = %v, want 2 chains", res.Tuples)
	}
	oracle, err := eng.Oracle(q, []*Relation{r1, r2, r3}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(oracle.Tuples) != len(res.Tuples) {
		t.Fatalf("oracle %d vs run %d", len(oracle.Tuples), len(res.Tuples))
	}
}

func TestPublicAPIOnDisk(t *testing.T) {
	eng, err := NewEngine(EngineOptions{Workers: 2, DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	q, _ := ParseQuery("A before B")
	a := FromIntervals("A", []Interval{NewInterval(0, 5)})
	b := FromIntervals("B", []Interval{NewInterval(10, 20), NewInterval(2, 3)})
	res, err := eng.Run(q, []*Relation{a, b}, RunOptions{Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 1 || res.Tuples[0][1] != 0 {
		t.Fatalf("output = %v", res.Tuples)
	}
}

func TestAlgorithmRegistry(t *testing.T) {
	names := AlgorithmNames()
	if len(names) != 12 {
		t.Fatalf("registered algorithms = %d (%v), want 12", len(names), names)
	}
	for _, n := range names {
		alg, err := AlgorithmByName(n)
		if err != nil {
			t.Fatal(err)
		}
		if alg.Name() != n {
			t.Errorf("algorithm %q reports name %q", n, alg.Name())
		}
	}
	if _, err := AlgorithmByName("quantum"); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestProvablyEmptyExported(t *testing.T) {
	q, _ := ParseQuery("A before B and B before C and C before A")
	if !ProvablyEmpty(q) {
		t.Fatal("before-cycle not proven empty")
	}
	q2, _ := ParseQuery("A overlaps B")
	if ProvablyEmpty(q2) {
		t.Fatal("satisfiable query proven empty")
	}
	// Point-satisfiable but proper-impossible.
	q3, _ := ParseQuery("A equals B and A meets B")
	if ProvablyEmpty(q3) || !ProvablyEmptyProper(q3) {
		t.Fatal("proper/point distinction wrong")
	}
}

func TestRunShortCircuitsProvablyEmpty(t *testing.T) {
	eng := MustNewEngine(EngineOptions{Workers: 2})
	q, _ := ParseQuery("A before B and B before C and C before A")
	rels := []*Relation{
		FromIntervals("A", []Interval{NewInterval(0, 1)}),
		FromIntervals("B", []Interval{NewInterval(5, 6)}),
		FromIntervals("C", []Interval{NewInterval(9, 10)}),
	}
	res, err := eng.Run(q, rels, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 0 || res.Algorithm != "provably-empty" {
		t.Fatalf("result = %+v", res)
	}
	if res.Metrics.IntermediatePairs != 0 {
		t.Fatal("short circuit still shuffled data")
	}
	// Binding errors still surface.
	if _, err := eng.Run(q, rels[:2], RunOptions{}); err == nil {
		t.Fatal("missing binding accepted on the short-circuit path")
	}
}

func TestPlanExported(t *testing.T) {
	q, _ := ParseQuery("R1 before R2 and R2 before R3")
	if Plan(q).Name() != "all-matrix" {
		t.Fatalf("Plan = %s", Plan(q).Name())
	}
}

func TestRunWithExplicitAlgorithm(t *testing.T) {
	eng := MustNewEngine(EngineOptions{Workers: 2})
	q, _ := ParseQuery("R1 overlaps R2")
	r1 := FromIntervals("R1", []Interval{NewInterval(0, 10)})
	r2 := FromIntervals("R2", []Interval{NewInterval(5, 20)})
	for _, name := range []string{"two-way", "all-rep", "2way-cascade", "rccis", "all-seq-matrix", "gen-matrix"} {
		alg, err := AlgorithmByName(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.RunWith(alg, q, []*Relation{r1, r2}, RunOptions{Partitions: 3, PartitionsPerDim: 3})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Tuples) != 1 {
			t.Fatalf("%s: output = %v", name, res.Tuples)
		}
	}
}

func TestMultiAttributeThroughAPI(t *testing.T) {
	eng := MustNewEngine(EngineOptions{Workers: 2})
	q, err := ParseQuery("city.len overlaps river.len and city.breadth overlaps river.breadth")
	if err != nil {
		t.Fatal(err)
	}
	city := NewRelation(NewSchema("city", "len", "breadth"))
	city.Append(NewInterval(100, 120), NewInterval(100, 110)) // building at (100,100), 20x10
	city.Append(NewInterval(500, 520), NewInterval(500, 510))
	// Allen's overlaps is directional: the city must start first on both
	// axes and the river must extend past it.
	river := NewRelation(NewSchema("river", "len", "breadth"))
	river.Append(NewInterval(105, 125), NewInterval(102, 115))
	res, err := eng.Run(q, []*Relation{city, river}, RunOptions{Partitions: 4, PartitionsPerDim: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 1 || res.Tuples[0][0] != 0 {
		t.Fatalf("spatial join output = %v", res.Tuples)
	}
}
